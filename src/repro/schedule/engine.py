"""The single-pass modulo scheduling engine (paper §3.3).

One engine implements the URACAM-style scheduler all three algorithms
share: operations are visited in SMS order; for each operation, candidate
placements (cluster, cycle) are evaluated against the reservation tables,
the inter-cluster communication resources and the register files; the
*cluster policy* — the only thing that differs between URACAM, Fixed
Partition and GP — decides which clusters are tried and how a winner is
chosen (via the figure of merit).  When every candidate fails on register
pressure, the engine applies the spill transformation (§3.3.2) and retries.

Communication routing for a cross-cluster value, in preference order:

1. reuse a register copy already delivered (or planned within the same
   candidate) to the consumer's cluster,
2. a new bus transfer (earliest free slot on any bus; the bus is
   non-pipelined so a transfer holds it for ``bus_latency`` cycles), or
3. the communication-through-memory transformation: a store in the
   producer's cluster plus a load in the consumer's (the store is shared by
   every memory-routed consumer of the value).

Spilled values live in memory; their future consumers load them directly,
which is also how the paper's "communication through memory" and spill
machinery coincide.

Candidate evaluation never mutates committed state: resource claims are
staged in an :class:`~repro.schedule.mrt.Overlay`, and value/lifetime edits
are applied and rolled back around the register-pressure check.

Hot-path architecture (reference vs. incremental accounting)
------------------------------------------------------------

Every sweep, figure and benchmark funnels through candidate evaluation, so
the engine keeps two implementations of the register accounting:

* The **reference** path — the pure functions ``value_segments`` /
  ``register_cycles`` / ``max_live`` in :mod:`~repro.schedule.values` and
  :mod:`~repro.schedule.lifetimes` — recomputes the full lifetime picture
  from the value states.  It stays the validator's source of truth and is
  what the independent schedule validation uses.
* The **incremental** path — :class:`~repro.schedule.pressure.PressureTracker`
  (the engine-facing name of the shared
  :class:`~repro.schedule.analysis_core.ScheduleAnalysis` session, which
  the finished :class:`~repro.schedule.result.ModuloSchedule` then carries
  for its validator and the eval metrics) — mirrors the committed values
  with a per-cluster pressure ring (``counts[cluster][m]`` over the II
  kernel cycles) and running register-cycle totals.  A candidate evaluation applies only the *delta
  segments* of the values its routes touch (plus the would-be new value),
  reads the ring peaks and totals, and rolls the delta back exactly —
  O(routes) instead of O(all values) per candidate.  Commits, spills
  (which truncate the home lifetime) and dead-transfer releases update the
  tracker the same way, so it always equals the reference recompute.

``EngineOptions.verify_pressure`` is the escape hatch: when set, the
engine cross-checks the tracker against the reference functions after
every commit, spill and candidate rollback
(:meth:`~repro.schedule.pressure.PressureTracker.verify`).  The
equivalence tests run whole schedules in this mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..ir.analysis import analyze
from ..ir.ddg import DepKind
from ..ir.loop import Loop
from ..ir.opcodes import OpClass
from ..machine.config import MachineConfig
from .arraykernels import make_reservation_table, make_tracker
from .merit import DEFAULT_THRESHOLD, MeritVector, compare, consumption
from .mrt import FUSlot, Overlay
from .ordering import sms_order
from .result import AuxOp, ModuloSchedule, Placed, ScheduleStats
from .structural_core import StructuralAnalysis, count_edges
from .values import (
    LOAD_LATENCY,
    STORE_LATENCY,
    BusTransfer,
    Use,
    ValueState,
    segments_of_value,
)


@dataclass
class _Route:
    """One planned value movement attached to a candidate placement."""

    value_key: Optional[int]  # producer uid of an existing value; None = new
    use: Use
    new_transfer: Optional[BusTransfer] = None
    new_store: Optional[AuxOp] = None
    new_load: Optional[AuxOp] = None


@dataclass
class _NodePlan:
    """Dependence routing work for one node, shared by all its candidates.

    ``operands``: (producer uid, read-time offset from the issue cycle) for
    every distinct placed producer read.  ``deliveries``: per placed data
    successor ``(consumer uid, consumer cluster, absolute read time)``, or
    ``(None, -1, offset)`` for a self-recurrence read (offset from the
    issue cycle), preserving the DDG edge order.
    """

    operands: List[Tuple[int, int]]
    deliveries: List[Tuple[Optional[int], int, int]]


@dataclass
class Candidate:
    """A feasible placement of one operation, ready to commit.

    The figure of merit is computed lazily: the fixed-partition policy (and
    the GP policy's home-cluster hit) never compares candidates, so they
    never pay for it.  ``merit`` reads committed engine state and is only
    valid while the policy is still selecting — i.e. before the next
    commit — which is the only time policies access it.
    """

    uid: int
    cluster: int
    time: int
    overlay: Overlay
    routes: List[_Route]
    creates_value: bool
    merit_thunk: Callable[[], MeritVector]
    _merit: Optional[MeritVector] = None

    @property
    def merit(self) -> MeritVector:
        if self._merit is None:
            self._merit = self.merit_thunk()
        return self._merit


class ClusterPolicy:
    """Decides which clusters are tried for each operation."""

    name = "policy"

    def select(
        self,
        uid: int,
        evaluate: Callable[[int], Optional[Candidate]],
        threshold: float = DEFAULT_THRESHOLD,
    ) -> Optional[Candidate]:
        """Return the winning candidate, or None if every cluster fails."""
        raise NotImplementedError


class AllClustersPolicy(ClusterPolicy):
    """URACAM: try every cluster, keep the figure-of-merit winner."""

    name = "all-clusters"

    def __init__(self, num_clusters: int) -> None:
        self.num_clusters = num_clusters

    def select(self, uid, evaluate, threshold=DEFAULT_THRESHOLD):
        best: Optional[Candidate] = None
        for cluster in range(self.num_clusters):
            candidate = evaluate(cluster)
            if candidate is None:
                continue
            if best is None or compare(candidate.merit, best.merit, threshold) < 0:
                best = candidate
        return best


class FixedClusterPolicy(ClusterPolicy):
    """Fixed Partition: only the partition's cluster is ever tried."""

    name = "fixed-partition"

    def __init__(self, assignment: Dict[int, int]) -> None:
        self.assignment = assignment

    def select(self, uid, evaluate, threshold=DEFAULT_THRESHOLD):
        return evaluate(self.assignment[uid])


class AssignedFirstPolicy(ClusterPolicy):
    """GP: the partition's cluster first; on failure, the merit-best other."""

    name = "assigned-first"

    def __init__(self, assignment: Dict[int, int], num_clusters: int) -> None:
        self.assignment = assignment
        self.num_clusters = num_clusters

    def select(self, uid, evaluate, threshold=DEFAULT_THRESHOLD):
        home = self.assignment[uid]
        candidate = evaluate(home)
        if candidate is not None:
            return candidate
        best: Optional[Candidate] = None
        for cluster in range(self.num_clusters):
            if cluster == home:
                continue
            other = evaluate(cluster)
            if other is None:
                continue
            if best is None or compare(other.merit, best.merit, threshold) < 0:
                best = other
        return best


@dataclass
class EngineOptions:
    """Tunables of the scheduling engine."""

    merit_threshold: float = DEFAULT_THRESHOLD
    allow_spill: bool = True
    allow_memory_comm: bool = True
    max_spill_rounds: int = 3
    spill_victims_tried: int = 6
    #: Original memory ops per cluster (per-cluster headroom, §3.3.4); when
    #: None, the single global headroom component of §3.3.2 is used.
    mem_ops_per_cluster: Optional[Dict[int, int]] = None
    #: Per-node candidate-feasibility cache across spill rounds: (cluster,
    #: cycle) slots that failed for structural reasons a spill cannot fix
    #: (the op's own FU-class slot busy, or a dependence-window violation —
    #: both functions of state a spill only tightens) stay pruned from the
    #: window rescan of later rounds.  Behaviour-preserving by
    #: construction; the equivalence tests A/B this knob.
    feas_cache: bool = True
    #: Back the reservation table and the pressure tracker with the
    #: flat-array kernels (:mod:`~repro.schedule.arraykernels`) instead of
    #: the reference dict/list structures.  Pure storage-layout swap — the
    #: arithmetic is shared — so schedules are bit-identical either way
    #: (the A/B property tests assert it); ``False`` forces the pure
    #: dict/list reference path.
    array_kernels: bool = True
    #: Let the II-search driver carry an :class:`IISearchState` across
    #: engine attempts: a re-attempt at the *same* II re-seeds each node's
    #: pruned-slot set from the previous attempt's outcomes (see the
    #: class docstring for why adoption is gated to equal IIs).  Purely
    #: observational under the stock strictly-escalating search;
    #: ``ScheduleStats`` records the seeded/hit counters and the II trace.
    ii_warm_start: bool = True
    #: Cross-check the incremental pressure tracker against the reference
    #: recompute after every commit, spill and candidate rollback, and the
    #: structural (reservation-table) handover against the reference
    #: sweeps before it is attached to the schedule (slow; used by the
    #: equivalence tests and the CLI's ``--verify`` mode).
    verify_pressure: bool = False
    #: Drivers re-validate every modulo schedule they produce with
    #: ``validate(full_recheck=True)`` before returning it (slow; the CLI's
    #: ``--verify`` paranoid mode and the CI smoke job turn this on).
    validate_schedules: bool = False


class IISearchState:
    """Warm-start state carried across the engine attempts of one II search.

    After a failed attempt the driver calls :meth:`absorb`, which adopts
    the attempt's per-node pruned-slot sets (the candidate-feasibility
    cache: (cluster, cycle) slots that failed for reasons a spill cannot
    cure — ``"fu"``/``"dep"``); :meth:`seed_for` hands them back to the
    next attempt so its window scans skip the proven-dead slots instead
    of re-probing them.

    **Soundness.** A recorded prune is a fact about the committed-placement
    prefix that existed when its node was placed, at that attempt's II.  A
    deterministic re-attempt at the *same* II (same policy, same options)
    reconstructs the identical prefix node by node, so every adopted prune
    re-proves itself — schedules are bit-identical with or without the
    seed, which is what the A/B property tests assert.  Across *different*
    IIs the facts do not transfer: both the dependence-window arithmetic
    and the FU conflict pattern relax as II grows, so a slot that failed
    at II may succeed at II+1 — pruning it would change schedules.
    :meth:`seed_for` therefore gates adoption on II equality.  Under the
    stock strictly-escalating II search this means seeding never fires
    (the counters record exactly that, honestly); same-II re-attempts —
    driver-level replays, the property tests — get the full benefit.
    """

    __slots__ = ("prev_ii", "pruned_by_node")

    def __init__(self) -> None:
        self.prev_ii: Optional[int] = None
        self.pruned_by_node: Dict[int, Set[Tuple[int, int]]] = {}

    def seed_for(self, uid: int, ii: int) -> Optional[Set[Tuple[int, int]]]:
        """The previous attempt's pruned slots for ``uid``, iff same II."""
        if ii != self.prev_ii:
            return None
        return self.pruned_by_node.get(uid)

    def absorb(self, engine: "SchedulingEngine") -> None:
        """Adopt a finished (failed) attempt's pruned-slot sets."""
        self.prev_ii = engine.ii
        self.pruned_by_node = engine._pruned_by_node


class SchedulingEngine:
    """One modulo-scheduling attempt of one loop at one fixed II."""

    def __init__(
        self,
        loop: Loop,
        machine: MachineConfig,
        ii: int,
        policy: ClusterPolicy,
        options: Optional[EngineOptions] = None,
        search: Optional[IISearchState] = None,
    ) -> None:
        self.loop = loop
        self.machine = machine
        self.ii = ii
        self.policy = policy
        self.options = options or EngineOptions()
        self.search = search
        self.ddg = loop.ddg
        self.table = make_reservation_table(
            machine, ii, self.options.array_kernels
        )
        self.placements: Dict[int, Placed] = {}
        self.aux_ops: List[AuxOp] = []
        self.stats = ScheduleStats()
        self._analysis = analyze(self.ddg, ii)
        self._aux_mem_per_cluster: Dict[int, int] = {}
        self._total_mem_ops = sum(1 for op in self.ddg.operations() if op.is_memory)
        self._failure_reasons: Dict[int, Set[str]] = {}
        # Per-node pruned-slot sets of this attempt, kept for the II-search
        # warm start to absorb (see IISearchState).
        self._pruned_by_node: Dict[int, Set[Tuple[int, int]]] = {}
        # Incremental register accounting (see the module docstring) plus
        # per-cluster constants the hot path would otherwise re-derive.
        # The analysis session owns the value ledger; on success the very
        # same session is attached to the ModuloSchedule so the validator
        # and the evaluation metrics reuse its segments and rings.
        self.pressure = make_tracker(
            ii, machine.num_clusters, self.options.array_kernels
        )
        self.values: Dict[int, ValueState] = self.pressure.values
        self._registers = [
            machine.cluster(c).registers for c in range(machine.num_clusters)
        ]
        self._reg_capacity = [r * ii for r in self._registers]
        self._mem_total = [
            self.table.fu_slots_total(c, OpClass.MEM)
            for c in range(machine.num_clusters)
        ]
        self._bus_total = self.table.bus_cycles_total()
        # Committed per-cluster peaks, recomputed only when the committed
        # value set changes (commit/spill) instead of per candidate.
        self._peaks_cache: Optional[List[int]] = None

    def _committed_peaks(self) -> List[int]:
        if self._peaks_cache is None:
            self._peaks_cache = self.pressure.peaks()
        return self._peaks_cache

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def attempt(self) -> Optional[ModuloSchedule]:
        """Run one full scheduling attempt; None if any node fails."""
        for uid in sms_order(self.ddg, self.ii):
            if not self._schedule_node(uid):
                return None
        schedule = ModuloSchedule(
            loop=self.loop,
            machine=self.machine,
            ii=self.ii,
            placements=dict(self.placements),
            values=dict(self.values),
            aux_ops=list(self.aux_ops),
            stats=self.stats,
        )
        # Hand the maintained lifetime analysis over: validate() and the
        # eval metrics read its cached segments/rings instead of
        # re-deriving every lifetime from the ledger.
        schedule.attach_analysis(self.pressure)
        # Same handover for the structural side: the reservation table's
        # live occupancy rows and bus ledger become the session the
        # dependence/FU/bus validator passes read, retiring their
        # full-sweep rechecks on engine-produced schedules.
        structural = StructuralAnalysis.from_table(
            self.table,
            dep_edges=count_edges(schedule),
            placements=schedule.placements,
        )
        if self.options.verify_pressure:
            structural.verify(schedule)
        schedule.attach_structural(structural)
        return schedule

    def _schedule_node(self, uid: int) -> bool:
        # The dependence window and the routed-dependence lists are functions
        # of the committed placements only, which do not change while this
        # node is being placed — derive them once instead of once per
        # cluster per candidate cycle per spill round.
        window = self._window(uid)
        plan = self._node_plan(uid)
        # Candidate-feasibility cache, shared by this node's spill rounds:
        # (cluster, cycle) slots whose failure a spill provably cannot fix
        # (see _evaluate).  Placements and the MRT only gain reservations
        # while this node is being placed, so the pruned set never goes
        # stale; it dies with the node — unless an II-search warm start
        # absorbs it for a same-II re-attempt (see IISearchState).
        pruned: Set[Tuple[int, int]] = set()
        seeded: Optional[frozenset] = None
        if self.search is not None and self.options.feas_cache:
            seed = self.search.seed_for(uid, self.ii)
            if seed:
                pruned |= seed
                seeded = frozenset(seed)
                self.stats.warm_start_seeded += len(seed)
        self._pruned_by_node[uid] = pruned
        for _round in range(self.options.max_spill_rounds + 1):
            self._failure_reasons = {}
            candidate = self.policy.select(
                uid,
                lambda cluster: self._evaluate(
                    uid, cluster, window, plan, pruned, seeded
                ),
                self.options.merit_threshold,
            )
            if candidate is not None:
                self._commit(candidate)
                if self.options.verify_pressure:
                    self.pressure.verify(self.values.values())
                return True
            if not self.options.allow_spill:
                return False
            register_bound = [
                cluster
                for cluster, reasons in sorted(self._failure_reasons.items())
                if "regs" in reasons
            ]
            if not register_bound:
                return False
            if not any(self._try_spill(cluster) for cluster in register_bound):
                return False
            if self.options.verify_pressure:
                self.pressure.verify(self.values.values())
        return False

    # ------------------------------------------------------------------
    # Slot window
    # ------------------------------------------------------------------
    def _window(self, uid: int) -> Sequence[int]:
        """Candidate issue cycles for ``uid``, in scan order.

        Lower bounds come from scheduled predecessors, upper bounds from
        scheduled successors (same-cluster separations; cross-cluster
        routing is checked per slot).  At most II distinct cycles are
        scanned, forward when predecessors anchor the node, backward when
        only successors do — the SMS scan directions.
        """
        estart: Optional[int] = None
        lstart: Optional[int] = None
        for dep in self.ddg.in_edges(uid):
            if dep.src == uid:
                continue
            placed = self.placements.get(dep.src)
            if placed is None:
                continue
            bound = placed.time + dep.latency - self.ii * dep.distance
            estart = bound if estart is None else max(estart, bound)
        for dep in self.ddg.out_edges(uid):
            if dep.dst == uid:
                continue
            placed = self.placements.get(dep.dst)
            if placed is None:
                continue
            bound = placed.time - dep.latency + self.ii * dep.distance
            lstart = bound if lstart is None else min(lstart, bound)

        if estart is None and lstart is None:
            base = self._analysis.asap[uid]
            return range(base, base + self.ii)
        if estart is None:
            return range(lstart, lstart - self.ii, -1)
        if lstart is None:
            return range(estart, estart + self.ii)
        return range(estart, min(lstart, estart + self.ii - 1) + 1)

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------
    def _node_plan(self, uid: int) -> "_NodePlan":
        """Pre-resolved dependence routing work for one node.

        Both lists depend only on the committed placements, so they are
        shared by every candidate (cluster, cycle) of this node.
        """
        operands: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for dep in self.ddg.in_edges(uid):
            if dep.kind is not DepKind.DATA or dep.src == uid:
                continue
            if dep.src not in self.placements:
                continue
            # Two deps with equal (src, distance) read the same copy at the
            # same time for any issue cycle — the first one routes for both.
            key = (dep.src, dep.distance)
            if key in seen:
                continue
            seen.add(key)
            operands.append((dep.src, self.ii * dep.distance))
        deliveries: List[Tuple[Optional[int], int, int]] = []
        for dep in self.ddg.out_edges(uid):
            if dep.kind is not DepKind.DATA:
                continue
            if dep.dst == uid:
                # Self-recurrence: read offset relative to the issue cycle.
                deliveries.append((None, -1, self.ii * dep.distance))
                continue
            placed = self.placements.get(dep.dst)
            if placed is None:
                continue
            deliveries.append(
                (dep.dst, placed.cluster, placed.time + self.ii * dep.distance)
            )
        return _NodePlan(operands, deliveries)

    #: Slot-failure reasons a spill round cannot cure: "fu" is the op's own
    #: FU-class slot (spills only *add* FU reservations), "dep" is a
    #: dependence-window violation (pure arithmetic over committed
    #: placements, which are frozen while the node is being placed).
    #: "regs"/"bus"/"mem" failures stay re-evaluated — a spill frees
    #: registers and can release dead bus transfers.
    _SPILL_INVARIANT = frozenset(("fu", "dep"))

    def _evaluate(
        self,
        uid: int,
        cluster: int,
        window: Optional[Sequence[int]] = None,
        plan: "Optional[_NodePlan]" = None,
        pruned: "Optional[Set[Tuple[int, int]]]" = None,
        seeded: Optional[frozenset] = None,
    ) -> Optional[Candidate]:
        reasons = self._failure_reasons.setdefault(cluster, set())
        op = self.ddg.operation(uid)
        if window is None:
            window = self._window(uid)
        if plan is None:
            plan = self._node_plan(uid)
        if not window:
            reasons.add("dep")
            return None
        caching = pruned is not None and self.options.feas_cache
        stats = self.stats
        for time in window:
            if caching:
                if (cluster, time) in pruned:
                    if seeded is not None and (cluster, time) in seeded:
                        stats.warm_start_hits += 1
                    else:
                        stats.feas_cache_hits += 1
                    continue
                stats.feas_cache_scans += 1
                slot_reasons: Set[str] = set()
                candidate = self._evaluate_slot(
                    uid, op, cluster, time, slot_reasons, plan
                )
                reasons |= slot_reasons
                if candidate is not None:
                    return candidate
                if slot_reasons and slot_reasons <= self._SPILL_INVARIANT:
                    pruned.add((cluster, time))
                continue
            candidate = self._evaluate_slot(uid, op, cluster, time, reasons, plan)
            if candidate is not None:
                return candidate
        return None

    def _evaluate_slot(
        self, uid: int, op, cluster: int, time: int, reasons: Set[str],
        plan: "_NodePlan",
    ) -> Optional[Candidate]:
        # The overlay is empty at this point, so check the table directly
        # and only pay for an Overlay once the op's own slot fits.
        if not self.table.fu_free_at(cluster, op.op_class, time):
            reasons.add("fu")
            return None
        overlay = Overlay(self.table)
        overlay.add_fu(FUSlot(cluster, op.op_class, time))

        routes: List[_Route] = []
        creates_value = not op.is_store
        birth = time + op.latency

        # --- operand routing: values of already-scheduled producers ------
        planned_operand_copies: Dict[Tuple[int, int], int] = {}
        for src, offset in plan.operands:
            route = self._plan_operand_route(
                self.values[src], uid, cluster, time + offset,
                overlay, reasons, planned_operand_copies,
            )
            if route is None:
                return None
            routes.append(route)

        # --- delivery routing: this value to scheduled consumers ---------
        if creates_value:
            planned_copies: Dict[int, int] = {cluster: birth}
            pending_store: Optional[AuxOp] = None
            for dst, dst_cluster, when in plan.deliveries:
                if dst is None:
                    read_time = time + when
                    if read_time < birth:
                        reasons.add("dep")
                        return None
                    routes.append(_Route(None, Use(uid, cluster, read_time, "reg")))
                    continue
                route, pending_store = self._plan_delivery_route(
                    uid, birth, cluster, dst_cluster, dst, when,
                    planned_copies, pending_store, overlay, reasons,
                )
                if route is None:
                    return None
                routes.append(route)

        # --- register feasibility + consumption deltas -------------------
        reg_delta, fits = self._register_effect(uid, cluster, birth, creates_value, routes)
        if not fits:
            reasons.add("regs")
            return None

        own_is_memory = op.is_memory
        return Candidate(
            uid=uid,
            cluster=cluster,
            time=time,
            overlay=overlay,
            routes=routes,
            creates_value=creates_value,
            merit_thunk=lambda: self._merit(overlay, reg_delta, own_is_memory),
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _plan_operand_route(
        self,
        value: ValueState,
        consumer: int,
        cluster: int,
        read_time: int,
        overlay: Overlay,
        reasons: Set[str],
        planned_copies: Dict[Tuple[int, int], int],
    ) -> Optional[_Route]:
        # 1. A register copy already in this cluster, committed or planned
        #    within this same candidate.
        available = value.copy_available(cluster)
        planned = planned_copies.get((value.producer, cluster))
        if planned is not None and (available is None or planned < available):
            available = planned
        if available is not None and available <= read_time:
            return _Route(value.producer, Use(consumer, cluster, read_time, "reg"))

        # 2. Spilled (or already stored, never bussed) values: memory load.
        if value.spilled or value.store_time is not None:
            route = self._plan_memory_load(value, consumer, cluster, read_time, overlay)
            if route is not None:
                return route
            if value.spilled:
                reasons.add("mem")
                return None

        # 3. A fresh bus transfer.
        slot = self.table.find_bus_slot(
            earliest=value.birth,
            latest_start=read_time - self.machine.bus_latency,
            length=self.machine.bus_latency,
            overlay=overlay,
        )
        if slot is not None:
            overlay.add_bus(slot)
            planned_copies[(value.producer, cluster)] = slot.start + slot.length
            return _Route(
                value.producer,
                Use(consumer, cluster, read_time, "reg"),
                new_transfer=BusTransfer(slot, cluster),
            )

        # 4. Communication through memory (store + load).
        if self.options.allow_memory_comm:
            route = self._plan_memory_load(
                value, consumer, cluster, read_time, overlay,
                create_store=value.store_time is None,
            )
            if route is not None:
                return route
            reasons.add("mem")
        reasons.add("bus")
        return None

    def _plan_memory_load(
        self,
        value: ValueState,
        consumer: int,
        cluster: int,
        read_time: int,
        overlay: Overlay,
        create_store: bool = False,
    ) -> Optional[_Route]:
        new_store: Optional[AuxOp] = None
        if create_store:
            store_time = self._find_mem_slot(
                value.home, value.birth, value.birth + self.ii - 1, overlay,
                prefer="early",
            )
            if store_time is None:
                return None
            overlay.add_fu(FUSlot(value.home, OpClass.MEM, store_time))
            new_store = AuxOp("comm_store", value.producer, value.home, store_time)
            ready = store_time + STORE_LATENCY
        else:
            maybe_ready = value.memory_ready()
            if maybe_ready is None:
                return None
            ready = maybe_ready
        load_time = self._find_mem_slot(
            cluster, ready, read_time - LOAD_LATENCY, overlay, prefer="late"
        )
        if load_time is None:
            return None
        overlay.add_fu(FUSlot(cluster, OpClass.MEM, load_time))
        kind = "spill_load" if value.spilled else "comm_load"
        return _Route(
            value.producer,
            Use(consumer, cluster, read_time, "mem", load_time=load_time),
            new_store=new_store,
            new_load=AuxOp(kind, value.producer, cluster, load_time),
        )

    def _plan_delivery_route(
        self,
        producer: int,
        birth: int,
        home: int,
        dst_cluster: int,
        consumer: int,
        read_time: int,
        planned_copies: Dict[int, int],
        pending_store: Optional[AuxOp],
        overlay: Overlay,
        reasons: Set[str],
    ) -> Tuple[Optional[_Route], Optional[AuxOp]]:
        """Route the value being produced to an already-scheduled consumer."""
        available = planned_copies.get(dst_cluster)
        if available is not None and available <= read_time:
            return (
                _Route(None, Use(consumer, dst_cluster, read_time, "reg")),
                pending_store,
            )
        if dst_cluster == home:
            # The local copy (ready at birth) arrives too late: the
            # consumer is scheduled before this producer's result.
            reasons.add("dep")
            return None, pending_store

        slot = self.table.find_bus_slot(
            earliest=birth,
            latest_start=read_time - self.machine.bus_latency,
            length=self.machine.bus_latency,
            overlay=overlay,
        )
        if slot is not None:
            overlay.add_bus(slot)
            delivered = slot.start + slot.length
            prior = planned_copies.get(dst_cluster)
            if prior is None or delivered < prior:
                planned_copies[dst_cluster] = delivered
            return (
                _Route(
                    None,
                    Use(consumer, dst_cluster, read_time, "reg"),
                    new_transfer=BusTransfer(slot, dst_cluster),
                ),
                pending_store,
            )

        if self.options.allow_memory_comm:
            new_store: Optional[AuxOp] = None
            if pending_store is None:
                store_time = self._find_mem_slot(
                    home, birth, birth + self.ii - 1, overlay, prefer="early"
                )
                if store_time is None:
                    reasons.add("mem")
                    return None, pending_store
                overlay.add_fu(FUSlot(home, OpClass.MEM, store_time))
                new_store = AuxOp("comm_store", producer, home, store_time)
                ready = store_time + STORE_LATENCY
            else:
                ready = pending_store.time + STORE_LATENCY
            load_time = self._find_mem_slot(
                dst_cluster, ready, read_time - LOAD_LATENCY, overlay,
                prefer="late",
            )
            if load_time is None:
                reasons.add("mem")
                return None, pending_store
            overlay.add_fu(FUSlot(dst_cluster, OpClass.MEM, load_time))
            route = _Route(
                None,
                Use(consumer, dst_cluster, read_time, "mem", load_time=load_time),
                new_store=new_store,
                new_load=AuxOp("comm_load", producer, dst_cluster, load_time),
            )
            return route, (pending_store or new_store)
        reasons.add("bus")
        return None, pending_store

    def _find_mem_slot(
        self,
        cluster: int,
        earliest: int,
        latest: int,
        overlay: Overlay,
        prefer: str,
    ) -> Optional[int]:
        """A cycle with a free memory port in ``[earliest, latest]``.

        ``prefer="early"`` scans forward (stores: free the register soon);
        ``prefer="late"`` scans backward (loads: keep the loaded copy's
        lifetime short).  At most II distinct cycles are examined.
        """
        if latest < earliest:
            return None
        if latest - earliest + 1 > self.ii:
            if prefer == "early":
                latest = earliest + self.ii - 1
            else:
                earliest = latest - self.ii + 1
        cycles = (
            range(earliest, latest + 1)
            if prefer == "early"
            else range(latest, earliest - 1, -1)
        )
        fu_free_at = self.table.fu_free_at
        for cycle in cycles:
            if fu_free_at(cluster, OpClass.MEM, cycle, overlay):
                return cycle
        return None

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------
    def _register_effect(
        self,
        uid: int,
        cluster: int,
        birth: int,
        creates_value: bool,
        routes: List[_Route],
    ) -> Tuple[List[int], bool]:
        """(register-cycle delta per cluster, fits) after a tentative apply.

        Incremental: only the values the routes touch (plus the would-be new
        value) have their segments re-derived; the delta segments are
        previewed against the pressure tracker's rings without mutating
        them — O(routes), not O(all values) — so only the value-state edits
        need rolling back.
        """
        tracker = self.pressure
        applied: List[Tuple[ValueState, str, object]] = []
        touched: List[int] = []
        new_value: Optional[ValueState] = None
        if creates_value:
            new_value = ValueState(producer=uid, home=cluster, birth=birth)
        try:
            for route in routes:
                if route.value_key is None:
                    target = new_value
                else:
                    target = self.values[route.value_key]
                    if route.value_key not in touched:
                        touched.append(route.value_key)
                target.uses.append(route.use)
                applied.append((target, "use", route.use))
                if route.new_transfer is not None:
                    target.transfers.append(route.new_transfer)
                    applied.append((target, "transfer", route.new_transfer))
                if route.new_store is not None:
                    applied.append((target, "store", target.store_time))
                    target.store_time = route.new_store.time
            changes: List[Tuple[Sequence[object], int]] = []
            for key in touched:
                changes.append((tracker.segments_of(key), -1))
                changes.append((segments_of_value(self.values[key]), +1))
            if new_value is not None:
                changes.append((segments_of_value(new_value), +1))
            return tracker.preview_effect(
                changes, self._registers, self._committed_peaks()
            )
        finally:
            for target, kind, payload in reversed(applied):
                if kind == "use":
                    target.uses.remove(payload)
                elif kind == "transfer":
                    target.transfers.remove(payload)
                else:
                    target.store_time = payload  # type: ignore[assignment]
            if self.options.verify_pressure:
                tracker.verify(self.values.values())

    # ------------------------------------------------------------------
    # Figure of merit
    # ------------------------------------------------------------------
    def _merit(
        self, overlay: Overlay, reg_delta: List[int], own_is_memory: bool
    ) -> MeritVector:
        # consumption() is inlined below: this runs once per compared
        # candidate and the call overhead is measurable.
        components: List[float] = []
        num_clusters = self.machine.num_clusters
        # Inter-cluster communication slots.
        bus_new = sum(slot.length for slot in overlay.bus_slots)
        bus_free = self._bus_total - self.table.bus_cycles_used()
        components.append(
            0.0 if bus_new <= 0
            else (1.0 if bus_free <= 0 else min(1.0, bus_new / bus_free))
        )
        # Per-cluster memory slots (every memory-port use counts).
        mem_new = [0] * num_clusters
        for slot in overlay.fu_slots:
            if slot.op_class is OpClass.MEM:
                mem_new[slot.cluster] += 1
        fu_slots_used = self.table.fu_slots_used
        for c in range(num_clusters):
            new = mem_new[c]
            if new <= 0:
                components.append(0.0)
                continue
            free = self._mem_total[c] - fu_slots_used(c, OpClass.MEM)
            components.append(1.0 if free <= 0 else min(1.0, new / free))
        # Per-cluster register lifetimes (baseline = the tracker's running
        # committed totals; no per-round recompute).
        before = self.pressure.reg_cycles
        for c in range(num_clusters):
            delta = reg_delta[c]
            if delta <= 0:
                components.append(0.0)
                continue
            free = self._reg_capacity[c] - before[c]
            components.append(1.0 if free <= 0 else min(1.0, delta / free))
        # Headroom for *inserted* memory operations: the op's own slot (when
        # the op is itself a memory op) is original code, not inserted code.
        aux_new = list(mem_new)
        if own_is_memory and overlay.fu_slots:
            own = overlay.fu_slots[0]
            aux_new[own.cluster] -= 1
        components.extend(self._headroom_components(aux_new))
        return MeritVector(tuple(components))

    def _headroom_components(self, aux_new: List[int]) -> List[float]:
        per_cluster = self.options.mem_ops_per_cluster
        if per_cluster is not None:
            out = []
            for c in range(self.machine.num_clusters):
                headroom_total = self._mem_total[c] - per_cluster.get(c, 0)
                headroom_used = self._aux_mem_per_cluster.get(c, 0)
                out.append(consumption(aux_new[c], headroom_total - headroom_used))
            return out
        headroom_total = sum(self._mem_total) - self._total_mem_ops
        headroom_used = sum(self._aux_mem_per_cluster.values())
        return [consumption(sum(aux_new), headroom_total - headroom_used)]

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def _commit(self, candidate: Candidate) -> None:
        candidate.overlay.commit()
        self.placements[candidate.uid] = Placed(candidate.cluster, candidate.time)
        new_value: Optional[ValueState] = None
        if candidate.creates_value:
            op = self.ddg.operation(candidate.uid)
            new_value = ValueState(
                producer=candidate.uid,
                home=candidate.cluster,
                birth=candidate.time + op.latency,
            )
            self.values[candidate.uid] = new_value
        touched: Set[int] = set()
        for route in candidate.routes:
            if route.value_key is None:
                target = new_value
            else:
                target = self.values[route.value_key]
                touched.add(route.value_key)
            target.uses.append(route.use)
            if route.new_transfer is not None:
                target.transfers.append(route.new_transfer)
                self.stats.bus_transfers += 1
            for aux in (route.new_store, route.new_load):
                if aux is not None:
                    self.aux_ops.append(aux)
                    self._aux_mem_per_cluster[aux.cluster] = (
                        self._aux_mem_per_cluster.get(aux.cluster, 0) + 1
                    )
            if route.new_store is not None:
                target.store_time = route.new_store.time
                self.stats.mem_comms += 1
        for key in touched:
            self.pressure.update(self.values[key])
        if new_value is not None:
            self.pressure.track(new_value)
        self._peaks_cache = None

    # ------------------------------------------------------------------
    # Spill transformation (§3.3.2)
    # ------------------------------------------------------------------
    def _try_spill(self, cluster: int) -> bool:
        """Spill one value to relieve ``cluster``'s register file."""
        ranked = []
        for value in self.values.values():
            if value.spilled:
                continue
            length = self._lifetime_in_cluster(value, cluster)
            if length > 0:
                ranked.append((length, value.producer, value))
        ranked.sort(key=lambda item: (-item[0], item[1]))
        for _length, _uid, value in ranked[: self.options.spill_victims_tried]:
            if self._spill_value(value):
                self.stats.spills += 1
                return True
        return False

    def _lifetime_in_cluster(self, value: ValueState, cluster: int) -> int:
        # Committed values always have their segments cached in the tracker.
        return sum(
            segment.length
            for segment in self.pressure.segments_of(value.producer)
            if segment.cluster == cluster
        )

    def _spill_value(self, value: ValueState) -> bool:
        """Move ``value`` to memory and convert its register reads to loads."""
        overlay = Overlay(self.table)
        new_store_time: Optional[int] = None
        if value.store_time is None:
            new_store_time = self._find_mem_slot(
                value.home, value.birth, value.birth + self.ii - 1, overlay,
                prefer="early",
            )
            if new_store_time is None:
                return False
            overlay.add_fu(FUSlot(value.home, OpClass.MEM, new_store_time))
            ready = new_store_time + STORE_LATENCY
        else:
            ready = value.memory_ready()
            assert ready is not None

        conversions: List[Tuple[Use, int]] = []
        for use in value.uses:
            if use.route != "reg" or use.consumer == value.producer:
                continue  # self-recurrence reads must stay in registers
            load_time = self._find_mem_slot(
                use.cluster, ready, use.read_time - LOAD_LATENCY, overlay,
                prefer="late",
            )
            if load_time is not None:
                overlay.add_fu(FUSlot(use.cluster, OpClass.MEM, load_time))
                conversions.append((use, load_time))
        if not conversions:
            return False
        if any(use.route == "reg" and use.consumer == value.producer
               for use in value.uses):
            # A self-recurrence pins the home register; spilling would not
            # shorten the home lifetime, so do not bother.
            return False

        overlay.commit()
        if new_store_time is not None:
            value.store_time = new_store_time
            self.aux_ops.append(
                AuxOp("spill_store", value.producer, value.home, new_store_time)
            )
            self._aux_mem_per_cluster[value.home] = (
                self._aux_mem_per_cluster.get(value.home, 0) + 1
            )
        value.spilled = True
        for use, load_time in conversions:
            use.route = "mem"
            use.load_time = load_time
            self.aux_ops.append(
                AuxOp("spill_load", value.producer, use.cluster, load_time)
            )
            self._aux_mem_per_cluster[use.cluster] = (
                self._aux_mem_per_cluster.get(use.cluster, 0) + 1
            )
        # Bus transfers whose destination no longer reads registers are dead.
        for transfer in list(value.transfers):
            if not value.reg_uses_in(transfer.dst_cluster):
                self.table.release_bus(transfer.slot)
                value.remove_transfer(transfer)
                self.stats.bus_transfers -= 1
        self.pressure.update(value)
        self._peaks_cache = None
        return True
