"""Flat-array hot-path kernels for the scheduling engine.

The engine's innermost loops — the FU free-slot probe, the bus-slot scan
and the pressure-ring preview — are executed millions of times per
extended-tier run.  The reference implementations keep that state in
tuple-keyed dicts (``(cluster, OpClass) -> row``, ``(bus, cycle) -> busy``)
and per-cluster list rings, so every probe pays a tuple allocation plus an
``Enum.__hash__`` call (a Python-level function).  This module re-lays the
same state as **flat integer arrays** indexed by plain integer arithmetic:

* :class:`ArrayReservationTable` — FU occupancy as one flat buffer of
  ``clusters × classes × II`` counts (row base =
  ``(cluster * len(OpClass) + op_class.index) * II``), the bus ledger as a
  ``bytearray`` of ``buses × II`` flags, and the per-class running totals
  as one flat counter buffer.  :class:`~repro.schedule.mrt.Overlay` keys
  become the same flat indexes (the table owns key construction via
  ``_fu_key``/``_bus_key``), so candidate staging stops hashing enums too.
* :class:`ArrayScheduleAnalysis` — the per-cluster pressure rings as one
  flat buffer (ring base = ``cluster * II``); candidate previews copy one
  II-sized slice per touched cluster.

**Reference-truth contract.** The dict/list implementations in
:mod:`~repro.schedule.mrt` and :mod:`~repro.schedule.analysis_core` remain
the reference truth: these subclasses override only the storage layout,
never the arithmetic — ring updates mirror
:func:`~repro.schedule.lifetimes.add_segment_to_ring` operation-for-
operation via :func:`add_segment_flat`, and the occupancy-row handover
normalizes back to the exact plain-list shape the reference sweeps
produce.  ``EngineOptions.array_kernels`` selects the layout per engine
(default on; ``False`` forces the pure dict/list path), and the A/B
property tests in ``tests/test_arraykernels.py`` assert bit-identical
schedules either way.

The buffer *element type* is pluggable via ``REPRO_ARRAY_BACKEND``:

* ``list`` (default) — a flat Python list of ints.  Fastest in CPython:
  element reads hand back already-boxed small ints, where ``array('q')``
  and numpy box a fresh object per read, which measurably loses on the
  II-sized rows these kernels touch.
* ``array`` — stdlib ``array('q')``; compact (8 bytes/slot, no pointer
  per element), a little slower per access.
* ``numpy`` — ``numpy.int64`` buffers, when numpy is importable; slices
  are *views*, so previews must ``.copy()``.

All three share the same flat indexing, so the choice is invisible above
this module.  All values leaving it are plain Python ints (``peaks()``,
occupancy rows), so no array scalar can leak into exported artifacts.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Tuple

from ..ir.opcodes import OpClass
from ..machine.config import MachineConfig
from .analysis_core import ScheduleAnalysis
from .mrt import BusSlot, FUSlot, ReservationTable

try:  # pragma: no cover - environment probe
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

#: Active buffer backend: flat Python lists unless overridden (see the
#: module docstring).  An unknown or unavailable override falls back to
#: the default rather than failing.
_requested = os.environ.get("REPRO_ARRAY_BACKEND", "list")
if _requested == "numpy" and _np is None:  # pragma: no cover - env gate
    _requested = "list"
BACKEND = _requested if _requested in ("list", "array", "numpy") else "list"
del _requested


if BACKEND == "numpy":  # pragma: no cover - opt-in backend

    def zeros(n: int):
        return _np.zeros(n, dtype=_np.int64)

    def to_list(buf, start: int, stop: int) -> List[int]:
        # Materialize to plain ints: numpy slices are views, and np.int64
        # scalars must never reach exports or preview arithmetic.
        return buf[start:stop].tolist()

elif BACKEND == "array":  # pragma: no cover - opt-in backend

    def zeros(n: int):
        return array("q", bytes(8 * n))

    def to_list(buf, start: int, stop: int) -> List[int]:
        return list(buf[start:stop])

else:

    def zeros(n: int):
        return [0] * n

    def to_list(buf, start: int, stop: int) -> List[int]:
        return buf[start:stop]


#: Private plain-list copy of ``buf[start:stop]`` — previews mutate and
#: ``max()`` it, so every backend hands back a fresh list of Python ints.
copy_row = to_list


def add_segment_flat(buf, base: int, birth: int, length: int, ii: int, sign: int) -> None:
    """:func:`~repro.schedule.lifetimes.add_segment_to_ring` on a flat ring.

    Operates on ``buf[base : base + ii]`` and adds exactly what the
    reference adds: ``sign * (length // ii)`` to every kernel cycle, plus
    ``sign`` to the ``length % ii`` cycles starting at ``birth % ii``.
    The remainder run is split at the ring's wrap point instead of paying
    the reference's per-element modulo — same cells, same totals.
    """
    whole, rem = divmod(length, ii)
    if whole:
        add = sign * whole
        for m in range(base, base + ii):
            buf[m] += add
    if rem:
        start = base + birth % ii
        end = start + rem
        top = base + ii
        if end <= top:
            for m in range(start, end):
                buf[m] += sign
        else:
            for m in range(start, top):
                buf[m] += sign
            for m in range(base, end - ii):
                buf[m] += sign


# ----------------------------------------------------------------------
# Reservation table on flat buffers
# ----------------------------------------------------------------------
class ArrayReservationTable(ReservationTable):
    """:class:`ReservationTable` with flat-array occupancy state.

    The dict state the base class builds stays allocated but unused (it is
    tiny); every method that reads or writes occupancy is overridden to go
    through the flat buffers instead.  Overlay keys are flat indexes here
    (see ``_fu_key``/``_bus_key``), so one integer hash replaces a tuple
    allocation plus an enum hash per staged probe.
    """

    def __init__(self, machine: MachineConfig, ii: int) -> None:
        super().__init__(machine, ii)
        self._n_classes = len(OpClass)
        self._num_clusters = machine.num_clusters
        cap = zeros(self._num_clusters * self._n_classes)
        for (cluster, op_class), capacity in self._capacity.items():
            cap[cluster * self._n_classes + op_class.index] = capacity
        self._cap_flat = cap
        self._fu_flat = zeros(self._num_clusters * self._n_classes * ii)
        self._class_used_flat = zeros(self._num_clusters * self._n_classes)
        self._num_buses = machine.num_buses
        self._bus_flat = bytearray(machine.num_buses * ii)
        self._bus_total_flat = machine.num_buses * ii

    # -- overlay key construction (int indexes instead of tuples) ---------
    def _fu_key(self, cluster: int, op_class: OpClass, m: int) -> int:
        return (cluster * self._n_classes + op_class.index) * self.ii + m

    def _bus_key(self, bus: int, cycle: int) -> int:
        return bus * self.ii + cycle

    # -- functional units --------------------------------------------------
    def fu_free_at(
        self,
        cluster: int,
        op_class: OpClass,
        cycle: int,
        overlay=None,
    ) -> bool:
        if not 0 <= cluster < self._num_clusters:
            # Same surfacing as the reference path's KeyError branch.
            self.machine.cluster(cluster)
        ii = self.ii
        row = cluster * self._n_classes + op_class.index
        idx = row * ii + cycle % ii
        used = self._fu_flat[idx]
        if overlay is not None:
            pending = overlay._fu.get(idx)
            if pending:
                used += pending
        return used < self._cap_flat[row]

    def reserve_fu(self, slot: FUSlot) -> None:
        row = slot.cluster * self._n_classes + slot.op_class.index
        self._fu_flat[row * self.ii + slot.cycle % self.ii] += 1
        self._class_used_flat[row] += 1

    def release_fu(self, slot: FUSlot) -> None:
        row = slot.cluster * self._n_classes + slot.op_class.index
        self._fu_flat[row * self.ii + slot.cycle % self.ii] -= 1
        self._class_used_flat[row] -= 1

    def fu_slots_used(self, cluster: int, op_class: OpClass) -> int:
        if not 0 <= cluster < self._num_clusters:
            return 0
        return int(
            self._class_used_flat[cluster * self._n_classes + op_class.index]
        )

    # -- buses -------------------------------------------------------------
    def bus_free(self, slot: BusSlot, overlay=None) -> bool:
        cycles = self.bus_cycles(slot)
        if cycles is None:
            return False
        base = slot.bus * self.ii
        bus_flat = self._bus_flat
        pending = overlay._bus if overlay is not None else None
        for cycle in cycles:
            idx = base + cycle
            if bus_flat[idx]:
                return False
            if pending is not None and pending.get(idx, False):
                return False
        return True

    def find_bus_slot(
        self,
        earliest: int,
        latest_start: int,
        length: int,
        overlay=None,
    ) -> Optional[BusSlot]:
        if latest_start < earliest:
            return None
        if self._bus_cycles_in_use >= self._bus_total_flat:
            # Saturated ledger: every (bus, kernel-cycle) pair is taken, and
            # an overlay only adds occupancy, so no scan can succeed.  This
            # O(1) exit retires the full II x buses scan that otherwise runs
            # (and fails) for every cross-cluster route once the single bus
            # of the paper's machines fills up.
            return None
        ii = self.ii
        limit = min(latest_start, earliest + ii - 1)
        num_buses = self._num_buses
        bus_flat = self._bus_flat
        pending = overlay._bus if overlay is not None else None
        if length == 1:
            if num_buses == 1:
                # Single-bus machines (all Table 1 configurations): the
                # flat index *is* the kernel cycle.
                for start in range(earliest, limit + 1):
                    idx = start % ii
                    if bus_flat[idx]:
                        continue
                    if pending is not None and pending.get(idx, False):
                        continue
                    return BusSlot(bus=0, start=start, length=1)
                return None
            for start in range(earliest, limit + 1):
                cycle = start % ii
                for bus in range(num_buses):
                    idx = bus * ii + cycle
                    if bus_flat[idx]:
                        continue
                    if pending is not None and pending.get(idx, False):
                        continue
                    return BusSlot(bus=bus, start=start, length=1)
            return None
        for start in range(earliest, limit + 1):
            for bus in range(num_buses):
                slot = BusSlot(bus=bus, start=start, length=length)
                if self.bus_free(slot, overlay):
                    return slot
        return None

    def reserve_bus(self, slot: BusSlot) -> None:
        cycles = self.bus_cycles(slot)
        if cycles is None:
            raise ValueError("cannot reserve a self-overlapping bus transfer")
        base = slot.bus * self.ii
        bus_flat = self._bus_flat
        for cycle in cycles:
            idx = base + cycle
            if not bus_flat[idx]:
                self._bus_cycles_in_use += 1
            bus_flat[idx] = 1

    def release_bus(self, slot: BusSlot) -> None:
        base = slot.bus * self.ii
        bus_flat = self._bus_flat
        for cycle in self.bus_cycles(slot) or []:
            idx = base + cycle
            if bus_flat[idx]:
                bus_flat[idx] = 0
                self._bus_cycles_in_use -= 1

    # -- structural handover ----------------------------------------------
    def fu_occupancy_rows(self) -> Dict[Tuple[int, OpClass], List[int]]:
        rows: Dict[Tuple[int, OpClass], List[int]] = {}
        ii = self.ii
        flat = self._fu_flat
        for key in self._capacity:
            cluster, op_class = key
            base = (cluster * self._n_classes + op_class.index) * ii
            row = to_list(flat, base, base + ii)
            if any(row):
                rows[key] = row
        return rows

    def bus_occupancy_rows(self) -> Dict[int, List[int]]:
        rows: Dict[int, List[int]] = {}
        ii = self.ii
        for bus in range(self.machine.num_buses):
            base = bus * ii
            row = [int(x) for x in self._bus_flat[base : base + ii]]
            if any(row):
                rows[bus] = row
        return rows


# ----------------------------------------------------------------------
# Pressure rings on flat buffers
# ----------------------------------------------------------------------
class ArrayScheduleAnalysis(ScheduleAnalysis):
    """:class:`ScheduleAnalysis` with one flat pressure-ring buffer.

    The ring for cluster ``c`` lives at ``[c * II, (c + 1) * II)``; the
    ``counts`` property materializes the reference's list-of-lists shape,
    so ``matches()``/``verify()`` (and any test peeking at the rings)
    compare against reference sessions unchanged.  ``reg_cycles`` stays a
    plain Python list — it is read per candidate by the figure of merit
    and exported verbatim.
    """

    def _init_rings(self) -> None:
        self._counts_flat = zeros(self.num_clusters * self.ii)

    @property
    def counts(self) -> List[List[int]]:
        ii = self.ii
        flat = self._counts_flat
        return [
            to_list(flat, cluster * ii, (cluster + 1) * ii)
            for cluster in range(self.num_clusters)
        ]

    def _apply(self, segments, sign: int) -> None:
        ii = self.ii
        flat = self._counts_flat
        reg_cycles = self.reg_cycles
        for seg in segments:
            length = seg.length
            cluster = seg.cluster
            add_segment_flat(flat, cluster * ii, seg.birth, length, ii, sign)
            reg_cycles[cluster] += sign * length

    def preview_effect(self, changes, registers, committed_peaks):
        ii = self.ii
        delta = [0] * self.num_clusters
        rows: Dict[int, object] = {}
        flat = self._counts_flat
        for segments, sign in changes:
            for seg in segments:
                cluster = seg.cluster
                row = rows.get(cluster)
                if row is None:
                    base = cluster * ii
                    row = copy_row(flat, base, base + ii)
                    rows[cluster] = row
                length = seg.length
                add_segment_flat(row, 0, seg.birth, length, ii, sign)
                delta[cluster] += sign * length
        for cluster in range(self.num_clusters):
            row = rows.get(cluster)
            # copy_row rows are plain int lists on every backend, so
            # max() is already a Python int.
            peak = max(row) if row is not None else committed_peaks[cluster]
            if peak > registers[cluster]:
                return delta, False
        return delta, True

    def peaks(self) -> List[int]:
        ii = self.ii
        flat = self._counts_flat
        return [
            max(to_list(flat, cluster * ii, (cluster + 1) * ii))
            for cluster in range(self.num_clusters)
        ]

    max_live = peaks

    def fits(self, registers) -> bool:
        ii = self.ii
        flat = self._counts_flat
        for cluster in range(self.num_clusters):
            if max(to_list(flat, cluster * ii, (cluster + 1) * ii)) > registers[cluster]:
                return False
        return True


# ----------------------------------------------------------------------
# Layout selection
# ----------------------------------------------------------------------
def make_reservation_table(
    machine: MachineConfig, ii: int, array_kernels: bool
) -> ReservationTable:
    """The engine's reservation table in the requested layout."""
    if array_kernels:
        return ArrayReservationTable(machine, ii)
    return ReservationTable(machine, ii)


def make_tracker(
    ii: int, num_clusters: int, array_kernels: bool
) -> ScheduleAnalysis:
    """The engine's pressure tracker in the requested layout."""
    if array_kernels:
        return ArrayScheduleAnalysis(ii, num_clusters)
    return ScheduleAnalysis(ii, num_clusters)
