"""Expansion of modulo schedules into flat cycle-by-cycle traces.

A modulo schedule is a *recipe*: iteration ``k`` issues every kernel
operation at ``time + k * II``.  Expanding the recipe for a finite trip
count yields the concrete prolog / kernel / epilog trace the processor
would execute.  This module provides:

* :func:`expand` — build the trace and **brute-force verify** it: per
  absolute cycle, functional-unit and bus occupancy must respect the
  machine, and every dependence must be satisfied instance by instance.
  This is an independent end-to-end check of the modulo reasoning (the
  reservation tables argue modulo II; the trace argues in absolute time).
* :func:`render_kernel` — a human-readable listing of the kernel, one row
  per kernel cycle, one column per cluster, with the pipeline stage of
  every operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ValidationError
from ..ir.ddg import DepKind
from ..ir.opcodes import OpClass
from .result import ModuloSchedule
from .values import LOAD_LATENCY, STORE_LATENCY


@dataclass
class ExpandedSchedule:
    """A flat execution trace of ``iterations`` loop iterations.

    Attributes:
        schedule: The modulo schedule that was expanded.
        iterations: Number of iterations expanded.
        issue_at: Absolute cycle -> list of human-readable issue records.
        total_cycles: Cycles from the first issue to the last writeback.
    """

    schedule: ModuloSchedule
    iterations: int
    issue_at: Dict[int, List[str]] = field(default_factory=dict)
    total_cycles: int = 0

    def utilization(self) -> float:
        """Issued operations per cycle over the whole trace."""
        if self.total_cycles <= 0:
            return 0.0
        issued = sum(len(ops) for ops in self.issue_at.values())
        return issued / self.total_cycles


def expand(schedule: ModuloSchedule, iterations: int = 0) -> ExpandedSchedule:
    """Expand and brute-force verify ``schedule`` for ``iterations``.

    Args:
        schedule: A complete modulo schedule.
        iterations: Trip count to expand (defaults to
            ``min(loop.trip_count, 3 * stage_count + 4)``, enough to cover
            prolog, steady state and epilog).

    Raises:
        ValidationError: if the expanded trace oversubscribes a functional
            unit, a memory port or a bus cycle, or breaks a dependence.
    """
    loop = schedule.loop
    machine = schedule.machine
    ii = schedule.ii
    if iterations <= 0:
        iterations = min(loop.trip_count, 3 * schedule.stage_count + 4)
    base = schedule.min_time

    fu_usage: Dict[Tuple[int, OpClass, int], int] = {}
    bus_usage: Dict[Tuple[int, int], int] = {}
    issue_at: Dict[int, List[str]] = {}
    last_cycle = 0

    def issue(cluster: int, op_class: OpClass, cycle: int, label: str) -> None:
        nonlocal last_cycle
        key = (cluster, op_class, cycle)
        fu_usage[key] = fu_usage.get(key, 0) + 1
        capacity = machine.cluster(cluster).units_for_class(op_class)
        if fu_usage[key] > capacity:
            raise ValidationError(
                f"expanded trace oversubscribes {op_class} on cluster "
                f"{cluster} at cycle {cycle}"
            )
        issue_at.setdefault(cycle, []).append(label)
        last_cycle = max(last_cycle, cycle)

    for k in range(iterations):
        offset = k * ii - base
        for uid, placed in schedule.placements.items():
            op = loop.ddg.operation(uid)
            cycle = placed.time + offset
            issue(placed.cluster, op.op_class, cycle, f"{op.name}#{k}")
            last_cycle = max(last_cycle, cycle + op.latency)
        for aux in schedule.aux_ops:
            cycle = aux.time + offset
            issue(aux.cluster, OpClass.MEM, cycle, f"{aux.kind}#{k}")
            lat = STORE_LATENCY if aux.is_store else LOAD_LATENCY
            last_cycle = max(last_cycle, cycle + lat)
        for value in schedule.values.values():
            for transfer in value.transfers:
                for step in range(transfer.slot.length):
                    cycle = transfer.slot.start + step + offset
                    key = (transfer.slot.bus, cycle)
                    bus_usage[key] = bus_usage.get(key, 0) + 1
                    if bus_usage[key] > 1:
                        raise ValidationError(
                            f"expanded trace double-books bus "
                            f"{transfer.slot.bus} at cycle {cycle}"
                        )
                last_cycle = max(
                    last_cycle, transfer.slot.start + transfer.slot.length + offset
                )

    _check_dependences(schedule, iterations, base)

    first_cycle = min(issue_at) if issue_at else 0
    return ExpandedSchedule(
        schedule=schedule,
        iterations=iterations,
        issue_at=issue_at,
        total_cycles=last_cycle - first_cycle,
    )


def _check_dependences(schedule: ModuloSchedule, iterations: int, base: int) -> None:
    """Instance-by-instance dependence check over the expanded trace."""
    loop = schedule.loop
    ii = schedule.ii
    for dep in loop.ddg.edges():
        src = schedule.placements[dep.src]
        dst = schedule.placements[dep.dst]
        if dep.kind is DepKind.DATA and src.cluster != dst.cluster:
            # Cross-cluster value movement has its own exact timing rules
            # (transfer or store/load); ModuloSchedule.validate() checks
            # those against the use records.
            continue
        for k in range(iterations):
            producer_iter = k - dep.distance
            if producer_iter < 0:
                continue  # operand is a live-in from before the loop
            produced = src.time + producer_iter * ii + dep.latency
            consumed = dst.time + k * ii
            if consumed < produced:
                raise ValidationError(
                    f"expanded trace breaks {dep.src}->{dep.dst} at "
                    f"iteration {k}: read {consumed} < ready {produced}"
                )


def render_kernel(schedule: ModuloSchedule) -> str:
    """Text listing of the kernel: kernel cycle x cluster, with stages."""
    loop = schedule.loop
    machine = schedule.machine
    ii = schedule.ii
    base = schedule.min_time
    cells: Dict[Tuple[int, int], List[str]] = {}
    for uid, placed in schedule.placements.items():
        op = loop.ddg.operation(uid)
        norm = placed.time - base
        stage, cycle = divmod(norm, ii)
        cells.setdefault((cycle, placed.cluster), []).append(
            f"{op.name}[s{stage}]"
        )
    for aux in schedule.aux_ops:
        norm = aux.time - base
        stage, cycle = divmod(norm, ii)
        cells.setdefault((cycle, aux.cluster), []).append(
            f"{aux.kind}[s{stage}]"
        )

    headers = ["cycle"] + [f"cluster {c}" for c in range(machine.num_clusters)]
    widths = [len(h) for h in headers]
    rows: List[List[str]] = []
    for cycle in range(ii):
        row = [str(cycle)]
        for cluster in range(machine.num_clusters):
            row.append(" ".join(sorted(cells.get((cycle, cluster), []))) or "-")
        rows.append(row)
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cols: List[str]) -> str:
        return "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols)).rstrip()

    out = [
        f"kernel of {loop.name!r}: II={ii}, {schedule.stage_count} stages",
        line(headers),
        line(["-" * w for w in widths]),
    ]
    out.extend(line(row) for row in rows)
    return "\n".join(out)
