"""Modulo reservation tables.

All machine resources are tracked modulo the initiation interval:

* **Functional units** — per (cluster, unit kind): at most ``units``
  operations may issue in each kernel cycle.  Units are fully pipelined, so
  an operation occupies its unit only at the issue cycle.  Memory units
  double as memory ports, as in the paper's configurations.
* **Buses** — per bus: the paper's bus is *non-pipelined*, so a transfer of
  latency ``L`` occupies one bus for ``L`` consecutive cycles, which must be
  distinct modulo II.

Candidate evaluation must not disturb the table, so reservations can be
staged in an :class:`Overlay` and committed only once a candidate wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.opcodes import OpClass
from ..machine.config import MachineConfig


@dataclass(frozen=True)
class FUSlot:
    """A functional-unit issue slot: one op of ``op_class`` at ``cycle``."""

    cluster: int
    op_class: OpClass
    cycle: int  # absolute issue cycle; occupancy is at cycle % II


@dataclass(frozen=True)
class BusSlot:
    """A bus transfer: occupies ``bus`` for ``length`` cycles from ``start``."""

    bus: int
    start: int  # absolute cycle of the first bus cycle
    length: int


class ReservationTable:
    """Committed modulo reservation state for one schedule attempt."""

    def __init__(self, machine: MachineConfig, ii: int) -> None:
        if ii < 1:
            raise ValueError("initiation interval must be >= 1")
        self.machine = machine
        self.ii = ii
        # (bus, kernel cycle) -> busy
        self._bus_used: Dict[Tuple[int, int], bool] = {}
        # Running utilization counters, maintained by reserve/release so the
        # per-candidate figure of merit never scans the used-slot state.
        self._fu_class_used: Dict[Tuple[int, OpClass], int] = {}
        self._bus_cycles_in_use = 0
        # Capacities are immutable per machine; resolve them once.
        self._capacity: Dict[Tuple[int, OpClass], int] = {
            (cluster, op_class): machine.cluster(cluster).units_for_class(op_class)
            for cluster in range(machine.num_clusters)
            for op_class in OpClass
        }
        # (cluster, op_class) -> [capacity, used@cycle0, ..., used@cycleII-1].
        # One dict hit resolves both the capacity and the per-cycle count in
        # the free-slot check, the engine's innermost resource test.
        self._fu_state: Dict[Tuple[int, OpClass], List[int]] = {
            key: [cap] + [0] * ii for key, cap in self._capacity.items()
        }

    # -- overlay key construction ------------------------------------------
    # Overlays stage reservations in dicts keyed by whatever the table
    # hands out here, so a subclass with a different storage layout (the
    # flat-array kernels key by integer index) changes the key shape in
    # one place and every overlay probe follows.
    def _fu_key(self, cluster: int, op_class: OpClass, m: int):
        return (cluster, op_class, m)

    def _bus_key(self, bus: int, cycle: int):
        return (bus, cycle)

    # -- functional units ------------------------------------------------
    def fu_capacity(self, cluster: int, op_class: OpClass) -> int:
        try:
            return self._capacity[(cluster, op_class)]
        except KeyError:
            # Out-of-range cluster: surface the machine's ConfigError.
            return self.machine.cluster(cluster).units_for_class(op_class)

    def fu_free(self, slot: FUSlot, overlay: "Optional[Overlay]" = None) -> bool:
        """True if one more op of the class can issue at the slot's cycle."""
        return self.fu_free_at(slot.cluster, slot.op_class, slot.cycle, overlay)

    def fu_free_at(
        self,
        cluster: int,
        op_class: OpClass,
        cycle: int,
        overlay: "Optional[Overlay]" = None,
    ) -> bool:
        """:meth:`fu_free` without requiring a FUSlot — the engine's slot
        scans call this once per candidate cycle."""
        m = cycle % self.ii
        try:
            state = self._fu_state[(cluster, op_class)]
        except KeyError:
            # Out-of-range cluster: surface the machine's ConfigError.
            self.machine.cluster(cluster)
            raise
        used = state[1 + m]
        if overlay is not None:
            used += overlay.fu_pending((cluster, op_class, m))
        return used < state[0]

    def reserve_fu(self, slot: FUSlot) -> None:
        ckey = (slot.cluster, slot.op_class)
        self._fu_state[ckey][1 + slot.cycle % self.ii] += 1
        self._fu_class_used[ckey] = self._fu_class_used.get(ckey, 0) + 1

    def release_fu(self, slot: FUSlot) -> None:
        ckey = (slot.cluster, slot.op_class)
        self._fu_state[ckey][1 + slot.cycle % self.ii] -= 1
        remaining = self._fu_class_used.get(ckey, 0) - 1
        if remaining > 0:
            self._fu_class_used[ckey] = remaining
        else:
            self._fu_class_used.pop(ckey, None)

    # -- buses -------------------------------------------------------------
    def bus_cycles(self, slot: BusSlot) -> Optional[List[int]]:
        """Kernel cycles a transfer occupies, or None if it self-overlaps.

        A transfer longer than the II would collide with the next iteration's
        instance of itself, making the slot unusable.
        """
        cycles = [(slot.start + k) % self.ii for k in range(slot.length)]
        if len(set(cycles)) != slot.length:
            return None
        return cycles

    def bus_free(self, slot: BusSlot, overlay: "Optional[Overlay]" = None) -> bool:
        cycles = self.bus_cycles(slot)
        if cycles is None:
            return False
        for cycle in cycles:
            key = (slot.bus, cycle)
            if self._bus_used.get(key, False):
                return False
            if overlay is not None and overlay.bus_pending(key):
                return False
        return True

    def find_bus_slot(
        self,
        earliest: int,
        latest_start: int,
        length: int,
        overlay: "Optional[Overlay]" = None,
    ) -> Optional[BusSlot]:
        """Earliest transfer start in ``[earliest, latest_start]`` on any bus.

        Scans at most ``II`` distinct start cycles (further starts alias the
        same kernel cycles).
        """
        if latest_start < earliest:
            return None
        limit = min(latest_start, earliest + self.ii - 1)
        if length == 1:
            # Single-cycle transfers (latency-1 bus): skip the generic
            # occupancy-list machinery in the scan, the engine's hottest
            # bus query.
            bus_used = self._bus_used
            for start in range(earliest, limit + 1):
                cycle = start % self.ii
                for bus in range(self.machine.num_buses):
                    key = (bus, cycle)
                    if bus_used.get(key, False):
                        continue
                    if overlay is not None and overlay.bus_pending(key):
                        continue
                    return BusSlot(bus=bus, start=start, length=1)
            return None
        for start in range(earliest, limit + 1):
            for bus in range(self.machine.num_buses):
                slot = BusSlot(bus=bus, start=start, length=length)
                if self.bus_free(slot, overlay):
                    return slot
        return None

    def reserve_bus(self, slot: BusSlot) -> None:
        cycles = self.bus_cycles(slot)
        if cycles is None:
            raise ValueError("cannot reserve a self-overlapping bus transfer")
        for cycle in cycles:
            key = (slot.bus, cycle)
            if not self._bus_used.get(key, False):
                self._bus_cycles_in_use += 1
            self._bus_used[key] = True

    def release_bus(self, slot: BusSlot) -> None:
        for cycle in self.bus_cycles(slot) or []:
            if self._bus_used.pop((slot.bus, cycle), False):
                self._bus_cycles_in_use -= 1

    # -- structural handover (for the StructuralAnalysis session) ---------
    def fu_occupancy_rows(self) -> Dict[Tuple[int, OpClass], List[int]]:
        """Copies of the nonzero per-(cluster, class) occupancy rows.

        Normalized exactly like the reference sweep
        (:func:`~repro.schedule.structural_core.fu_usage_rows`): the
        capacity slot is stripped and untouched rows are omitted, so the
        engine's handed-over session compares equal to a from-scratch
        rebuild of the same schedule.
        """
        return {
            key: state[1:]
            for key, state in self._fu_state.items()
            if any(state[1:])
        }

    def bus_occupancy_rows(self) -> Dict[int, List[int]]:
        """Per-bus occupancy counts over the kernel cycles (copies)."""
        rows: Dict[int, List[int]] = {}
        for (bus, cycle), used in self._bus_used.items():
            if not used:
                continue
            row = rows.get(bus)
            if row is None:
                row = rows[bus] = [0] * self.ii
            row[cycle] += 1
        return rows

    # -- utilization (for the figure of merit) ----------------------------
    def fu_slots_used(self, cluster: int, op_class: OpClass) -> int:
        return self._fu_class_used.get((cluster, op_class), 0)

    def fu_slots_total(self, cluster: int, op_class: OpClass) -> int:
        return self.fu_capacity(cluster, op_class) * self.ii

    def bus_cycles_used(self) -> int:
        return self._bus_cycles_in_use

    def bus_cycles_total(self) -> int:
        return self.machine.num_buses * self.ii


class Overlay:
    """Tentative reservations stacked on a :class:`ReservationTable`.

    Candidate evaluation adds its would-be reservations here so that later
    checks within the same candidate see them, without mutating the table.
    """

    def __init__(self, table: ReservationTable) -> None:
        self.table = table
        # Keys are whatever ``table._fu_key``/``table._bus_key`` construct:
        # tuples for the reference table, flat integer indexes for the
        # array-kernel table.
        self._fu: Dict[object, int] = {}
        self._bus: Dict[object, bool] = {}
        self.fu_slots: List[FUSlot] = []
        self.bus_slots: List[BusSlot] = []

    def fu_pending(self, key) -> int:
        """Pending issue count for a table-constructed FU key."""
        return self._fu.get(key, 0)

    def bus_pending(self, key) -> bool:
        """True if a table-constructed bus key is staged here."""
        return self._bus.get(key, False)

    def add_fu(self, slot: FUSlot) -> None:
        table = self.table
        key = table._fu_key(slot.cluster, slot.op_class, slot.cycle % table.ii)
        self._fu[key] = self._fu.get(key, 0) + 1
        self.fu_slots.append(slot)

    def add_bus(self, slot: BusSlot) -> None:
        table = self.table
        cycles = table.bus_cycles(slot)
        if cycles is None:
            # A self-overlapping transfer can never be reserved; staging it
            # anyway would make a later commit() blow up mid-way, after some
            # reservations already landed in the table.
            raise ValueError("cannot stage a self-overlapping bus transfer")
        for cycle in cycles:
            self._bus[table._bus_key(slot.bus, cycle)] = True
        self.bus_slots.append(slot)

    def commit(self) -> None:
        """Write every pending reservation into the underlying table."""
        for slot in self.fu_slots:
            self.table.reserve_fu(slot)
        for slot in self.bus_slots:
            self.table.reserve_bus(slot)
