"""Modulo scheduling: engine, policies, drivers, fallback, validation."""

from .analysis_core import ScheduleAnalysis
from .arraykernels import ArrayReservationTable, ArrayScheduleAnalysis
from .expand import ExpandedSchedule, expand, render_kernel
from .drivers import (
    SCHEDULERS,
    BaseScheduler,
    FixedPartitionScheduler,
    GPScheduler,
    ScheduleOutcome,
    UnifiedScheduler,
    UracamScheduler,
)
from .engine import (
    AllClustersPolicy,
    AssignedFirstPolicy,
    Candidate,
    ClusterPolicy,
    EngineOptions,
    FixedClusterPolicy,
    IISearchState,
    SchedulingEngine,
)
from .lifetimes import LiveSegment, max_live, pressure_by_cycle, register_cycles
from .listsched import ListSchedule, list_schedule
from .merit import DEFAULT_THRESHOLD, MeritVector, compare, consumption
from .mii import mii, rec_mii, res_mii
from .mrt import BusSlot, FUSlot, Overlay, ReservationTable
from .ordering import sms_order
from .pressure import PressurePreview, PressureTracker
from .result import AuxOp, ModuloSchedule, Placed, ScheduleStats
from .structural_core import StructuralAnalysis
from .values import BusTransfer, Use, ValueState, segments_of_value, value_segments

__all__ = [
    "AllClustersPolicy",
    "ArrayReservationTable",
    "ArrayScheduleAnalysis",
    "AssignedFirstPolicy",
    "AuxOp",
    "BaseScheduler",
    "BusSlot",
    "BusTransfer",
    "Candidate",
    "ClusterPolicy",
    "DEFAULT_THRESHOLD",
    "EngineOptions",
    "ExpandedSchedule",
    "FixedClusterPolicy",
    "FixedPartitionScheduler",
    "FUSlot",
    "GPScheduler",
    "IISearchState",
    "ListSchedule",
    "LiveSegment",
    "MeritVector",
    "ModuloSchedule",
    "Overlay",
    "Placed",
    "PressurePreview",
    "PressureTracker",
    "ReservationTable",
    "SCHEDULERS",
    "ScheduleAnalysis",
    "ScheduleOutcome",
    "ScheduleStats",
    "SchedulingEngine",
    "StructuralAnalysis",
    "UnifiedScheduler",
    "UracamScheduler",
    "Use",
    "ValueState",
    "compare",
    "consumption",
    "expand",
    "list_schedule",
    "max_live",
    "mii",
    "pressure_by_cycle",
    "rec_mii",
    "register_cycles",
    "render_kernel",
    "res_mii",
    "segments_of_value",
    "sms_order",
    "value_segments",
]
