"""Register lifetime accounting for modulo schedules.

A value live over the absolute cycle interval ``[birth, death)`` occupies a
register of its cluster.  Because consecutive iterations overlap every II
cycles, the number of simultaneously live instances at kernel cycle ``m`` is
the number of integers ``k`` with ``birth <= m + k*II < death``; the
cluster's register requirement is the maximum of that count (summed over all
values) across the II kernel cycles — the classic *MaxLives* measure used
for modulo-schedule register allocation.

Zero-length intervals still consume a register for one cycle (a produced
value exists at least until the writeback).

These pure functions are the *reference* accounting.  The incremental
mirror every hot path uses — and the one finished schedules carry for
their validator and metrics — is the
:class:`~repro.schedule.analysis_core.ScheduleAnalysis` session, which
goes through :func:`add_segment_to_ring` below for all of its ring
arithmetic so the two cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..machine.config import MachineConfig


@dataclass(frozen=True)
class LiveSegment:
    """A register occupancy interval in one cluster.

    Attributes:
        cluster: Cluster whose register file holds the value.
        birth: Absolute cycle the value becomes live.
        death: Absolute cycle the value dies (exclusive); clamped to at
            least ``birth + 1``.
    """

    cluster: int
    birth: int
    death: int

    @property
    def length(self) -> int:
        return max(self.death - self.birth, 1)


def add_segment_to_ring(
    row: List[int], birth: int, length: int, ii: int, sign: int = 1
) -> None:
    """Add (``sign=+1``) or remove (``sign=-1``) one segment's live counts
    from a kernel-cycle ring ``row`` of length ``ii``.

    This is the single definition of the per-cycle accounting arithmetic;
    both the reference recompute (:func:`pressure_by_cycle`) and the
    incremental tracker (:mod:`repro.schedule.pressure`) go through it, so
    they cannot drift apart.
    """
    whole, rem = divmod(length, ii)
    if whole:
        add = sign * whole
        for m in range(ii):
            row[m] += add
    start = birth % ii
    for offset in range(rem):
        row[(start + offset) % ii] += sign


def pressure_by_cycle(
    segments: Iterable[LiveSegment], ii: int, num_clusters: int
) -> List[List[int]]:
    """Per-cluster live-value counts for each kernel cycle.

    Returns ``counts[cluster][m]`` = values live at kernel cycle ``m``.
    """
    counts = [[0] * ii for _ in range(num_clusters)]
    for seg in segments:
        add_segment_to_ring(counts[seg.cluster], seg.birth, seg.length, ii)
    return counts


def max_live(
    segments: Iterable[LiveSegment], ii: int, num_clusters: int
) -> List[int]:
    """MaxLives per cluster: peak simultaneous live values."""
    return [max(row) if row else 0 for row in pressure_by_cycle(segments, ii, num_clusters)]


def register_cycles(
    segments: Iterable[LiveSegment], num_clusters: int
) -> List[int]:
    """Total register-cycles consumed per cluster (figure-of-merit input)."""
    totals = [0] * num_clusters
    for seg in segments:
        totals[seg.cluster] += seg.length
    return totals


def fits_registers(
    segments: Iterable[LiveSegment],
    ii: int,
    machine: MachineConfig,
) -> bool:
    """True if every cluster's MaxLives is within its register file."""
    peaks = max_live(segments, ii, machine.num_clusters)
    return all(
        peaks[cluster] <= machine.cluster(cluster).registers
        for cluster in range(machine.num_clusters)
    )


def overflowing_clusters(
    segments: Iterable[LiveSegment],
    ii: int,
    machine: MachineConfig,
) -> List[int]:
    """Clusters whose register requirement exceeds their file, worst first."""
    peaks = max_live(segments, ii, machine.num_clusters)
    over = [
        (peaks[cluster] - machine.cluster(cluster).registers, cluster)
        for cluster in range(machine.num_clusters)
        if peaks[cluster] > machine.cluster(cluster).registers
    ]
    over.sort(key=lambda item: (-item[0], item[1]))
    return [cluster for _excess, cluster in over]
