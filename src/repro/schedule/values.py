"""Value tracking: where each register value lives and who reads it how.

A *value* is the result of a non-store operation.  During scheduling it can
exist in several places:

* the **home** register file — the cluster where its producer issued;
* **copies** in remote register files, delivered by bus transfers;
* **memory**, after a spill store or a communication-through-memory store.

Every consumer sources each operand through a :class:`Use` record: route
``"reg"`` (reads the home register or a delivered copy in its own cluster)
or ``"mem"`` (an inserted load reads the spilled/communicated value from
memory).  Register lifetimes — the input to the MaxLives register
allocator — are derived purely from these records by :func:`value_segments`,
so the scheduler and the independent validator share one source of truth.
The shared :class:`~repro.schedule.analysis_core.ScheduleAnalysis` session
caches each value's :func:`segments_of_value` list and maintains the
derived pressure rings by delta; these pure functions remain the reference
it is cross-checked against.

All times are absolute issue cycles; ``read_time`` of a consumer at issue
cycle ``t`` reading across ``distance`` iterations is ``t + II * distance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..ir.opcodes import COMM_LOAD, COMM_STORE
from .lifetimes import LiveSegment
from .mrt import BusSlot

#: Latency of the store half of a memory route (value visible afterwards).
STORE_LATENCY = COMM_STORE.latency
#: Latency of the load half of a memory route.
LOAD_LATENCY = COMM_LOAD.latency


@dataclass
class Use:
    """One consumer reading one value.

    Attributes:
        consumer: uid of the consumer operation.
        cluster: Cluster the consumer issues in.
        read_time: Absolute cycle the operand is read
            (``issue + II * distance``).
        route: ``"reg"`` or ``"mem"``.
        load_time: For ``"mem"`` routes, the issue cycle of the aux load.
    """

    consumer: int
    cluster: int
    read_time: int
    route: str = "reg"
    load_time: Optional[int] = None


@dataclass
class BusTransfer:
    """A committed bus transfer delivering a value to a remote cluster."""

    slot: BusSlot
    dst_cluster: int

    @property
    def delivered_at(self) -> int:
        return self.slot.start + self.slot.length


@dataclass
class ValueState:
    """Lifetime/location state of one value during scheduling.

    Attributes:
        producer: uid of the producing operation.
        home: Cluster of the producer.
        birth: Absolute cycle the value is written (issue + latency).
        transfers: Bus transfers already committed for this value.
        store_time: Issue cycle of the spill/communication store, if any.
        spilled: True once future reads should default to the memory route
            (the home lifetime is truncated at the store).
        uses: All consumer records.
    """

    producer: int
    home: int
    birth: int
    transfers: List[BusTransfer] = field(default_factory=list)
    store_time: Optional[int] = None
    spilled: bool = False
    uses: List[Use] = field(default_factory=list)

    # ------------------------------------------------------------------
    def copy_available(self, cluster: int) -> Optional[int]:
        """Cycle from which the value is readable in ``cluster``'s registers."""
        if cluster == self.home:
            return None if self.spilled else self.birth
        times = [
            t.delivered_at for t in self.transfers if t.dst_cluster == cluster
        ]
        return min(times) if times else None

    def memory_ready(self) -> Optional[int]:
        """Cycle from which the value is readable from memory."""
        if self.store_time is None:
            return None
        return self.store_time + STORE_LATENCY

    def reg_uses_in(self, cluster: int) -> List[Use]:
        return [u for u in self.uses if u.cluster == cluster and u.route == "reg"]

    def remove_transfer(self, transfer: BusTransfer) -> None:
        self.transfers.remove(transfer)


def segments_of_value(val: ValueState) -> List[LiveSegment]:
    """Register-occupancy segments implied by one value's state.

    * Home segment: ``[birth, death)`` where death covers every home
      register read, every outgoing transfer's completion, and the spill
      store (a stored value is read on the store's issue cycle).
    * One segment per remote copy: from delivery to the last register read
      in that cluster.
    * One short segment per memory-routed use: from the load's completion to
      the read.

    This per-value decomposition is what lets the incremental tracker
    (:mod:`repro.schedule.pressure`) maintain pressure by *delta*: a
    candidate or spill mutates a handful of values, so only their segments
    need re-deriving.
    """
    segments: List[LiveSegment] = []
    home_death = val.birth + 1
    if val.store_time is not None:
        home_death = max(home_death, val.store_time + 1)
    for transfer in val.transfers:
        home_death = max(home_death, transfer.delivered_at)
    for use in val.reg_uses_in(val.home):
        home_death = max(home_death, use.read_time)
    segments.append(LiveSegment(val.home, val.birth, home_death))

    remote_clusters = {t.dst_cluster for t in val.transfers}
    for cluster in sorted(remote_clusters):
        delivered = val.copy_available(cluster)
        if delivered is None:
            continue
        death = delivered + 1
        for use in val.reg_uses_in(cluster):
            death = max(death, use.read_time)
        segments.append(LiveSegment(cluster, delivered, death))

    for use in val.uses:
        if use.route == "mem" and use.load_time is not None:
            ready = use.load_time + LOAD_LATENCY
            segments.append(
                LiveSegment(use.cluster, ready, max(use.read_time, ready + 1))
            )
    return segments


def value_segments(values: Iterable[ValueState]) -> List[LiveSegment]:
    """Register-occupancy segments implied by the value states.

    The reference (full-recompute) accounting: concatenates
    :func:`segments_of_value` over every value.
    """
    segments: List[LiveSegment] = []
    for val in values:
        segments.extend(segments_of_value(val))
    return segments
