"""The three scheduling algorithms compared in the paper.

All three share the :class:`~repro.schedule.engine.SchedulingEngine` and
differ only in cluster assignment and in how they react when a scheduling
attempt fails at an initiation interval (Figure 1 of the paper):

* :class:`UracamScheduler` — the baseline (Codina et al., PACT'01): no
  pre-partition; every operation tries every cluster and the figure of
  merit picks the winner.  On failure the II is bumped and the attempt
  restarts.
* :class:`FixedPartitionScheduler` — GP variant (a): the multilevel
  partition is computed once (at MII) and the scheduler must follow it
  exactly; any failure bumps the II, keeping the partition.
* :class:`GPScheduler` — GP variant (b), the paper's scheme: the scheduler
  follows the partition but may fall back to other clusters per node; when
  the II is bumped, the partition is recomputed iff its bus bound exceeds
  the new II (``IIbus > II``) — otherwise recomputing cannot help (§3.1).

Every driver measures its own scheduling CPU time (Table 2) and falls back
to list scheduling when the II search space is exhausted (as the paper does
for loops where modulo scheduling becomes inappropriate).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, replace
from typing import Dict, Optional, Union

from ..ir.loop import Loop
from ..machine.config import MachineConfig
from ..partition.partitioner import MultilevelPartitioner, Partition, trivial_partition
from .engine import (
    AllClustersPolicy,
    AssignedFirstPolicy,
    ClusterPolicy,
    EngineOptions,
    FixedClusterPolicy,
    IISearchState,
    SchedulingEngine,
)
from .listsched import ListSchedule, list_schedule
from .mii import mii
from .result import ModuloSchedule

#: What a driver produces: a modulo schedule or the list-scheduling fallback.
AnySchedule = Union[ModuloSchedule, ListSchedule]


@dataclass
class ScheduleOutcome:
    """A scheduled loop plus scheduling-cost metadata."""

    loop: Loop
    machine: MachineConfig
    schedule: AnySchedule
    cpu_seconds: float
    scheduler_name: str

    @property
    def is_modulo(self) -> bool:
        return isinstance(self.schedule, ModuloSchedule)

    def ipc(self) -> float:
        return self.schedule.ipc()

    def execution_cycles(self) -> int:
        return self.schedule.execution_cycles()


class BaseScheduler:
    """Common II-search loop shared by the three algorithms."""

    name = "base"

    def __init__(
        self,
        machine: MachineConfig,
        max_ii_span: int = 48,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.machine = machine
        self.max_ii_span = max_ii_span
        self.options = options or EngineOptions()

    # -- per-algorithm hooks ----------------------------------------------
    def _prepare(self, loop: Loop, start_ii: int) -> None:
        """Called once before the II search starts."""

    def _policy(self, loop: Loop, ii: int) -> ClusterPolicy:
        raise NotImplementedError

    def _on_failure(self, loop: Loop, failed_ii: int, next_ii: int) -> None:
        """Called after an attempt at ``failed_ii`` fails."""

    # -- driver -------------------------------------------------------------
    def schedule(self, loop: Loop) -> ScheduleOutcome:
        """Schedule ``loop``; never fails (falls back to list scheduling)."""
        started = _time.perf_counter()
        start_ii = mii(loop, self.machine)
        self._prepare(loop, start_ii)
        attempts = 0
        schedule: AnySchedule
        found: Optional[ModuloSchedule] = None
        ii = start_ii
        step = 1
        consecutive_failures = 0
        feas_hits = feas_scans = 0
        warm_seeded = warm_hits = 0
        ii_trace = []
        search = IISearchState() if self.options.ii_warm_start else None
        while ii <= start_ii + self.max_ii_span:
            policy = self._policy(loop, ii)
            engine = SchedulingEngine(
                loop, self.machine, ii, policy, self._engine_options(loop),
                search=search,
            )
            attempts += 1
            ii_trace.append(ii)
            found = engine.attempt()
            # Candidate-feasibility cache telemetry survives failed
            # attempts (where most of the spill-round rescanning happens).
            feas_hits += engine.stats.feas_cache_hits
            feas_scans += engine.stats.feas_cache_scans
            warm_seeded += engine.stats.warm_start_seeded
            warm_hits += engine.stats.warm_start_hits
            if found is not None:
                break
            if search is not None:
                search.absorb(engine)
            # Escalate geometrically on stubborn loops: after every three
            # consecutive failures the II step doubles (1,1,2,2,2,4,...),
            # keeping pathological register-bound loops from costing dozens
            # of near-identical attempts.  (Deviation from the paper's
            # implicit II+1 search; affects all three algorithms equally.)
            consecutive_failures += 1
            if consecutive_failures % 3 == 0:
                step *= 2
            next_ii = ii + step
            self._on_failure(loop, ii, next_ii)
            ii = next_ii
        if found is not None:
            found.scheduler_name = self.name
            found.stats.ii_attempts = attempts
            found.stats.partitions_computed = getattr(
                self, "_partitions_computed", 0
            )
            found.stats.feas_cache_hits = feas_hits
            found.stats.feas_cache_scans = feas_scans
            found.stats.ii_trace = tuple(ii_trace)
            found.stats.warm_start_seeded = warm_seeded
            found.stats.warm_start_hits = warm_hits
            if self.options.validate_schedules:
                # Paranoid end-to-end mode (CLI --verify): rebuild the
                # lifetime analysis from the raw ledger and cross-check it
                # against the engine-attached session.
                found.validate(full_recheck=True)
            schedule = found
        else:
            schedule = list_schedule(loop, self.machine)
        elapsed = _time.perf_counter() - started
        return ScheduleOutcome(
            loop=loop,
            machine=self.machine,
            schedule=schedule,
            cpu_seconds=elapsed,
            scheduler_name=self.name,
        )

    def _engine_options(self, loop: Loop) -> EngineOptions:
        return self.options


def _mem_ops_per_cluster(loop: Loop, partition: Partition) -> Dict[int, int]:
    """Original memory operations each cluster will host (§3.3.4)."""
    counts: Dict[int, int] = {}
    for uid in loop.ddg.uids():
        if loop.ddg.operation(uid).is_memory:
            cluster = partition.assignment[uid]
            counts[cluster] = counts.get(cluster, 0) + 1
    return counts


class UracamScheduler(BaseScheduler):
    """The URACAM baseline: unified assign-and-schedule, no global view."""

    name = "uracam"

    def _policy(self, loop: Loop, ii: int) -> ClusterPolicy:
        return AllClustersPolicy(self.machine.num_clusters)


class UnifiedScheduler(UracamScheduler):
    """The unified (1-cluster) upper-bound configuration's scheduler.

    Identical machinery (§3.3 heuristics handle register pressure); with a
    single cluster the policy degenerates to "the one cluster".
    """

    name = "unified"


class FixedPartitionScheduler(BaseScheduler):
    """GP variant (a): schedule must follow the partition exactly."""

    name = "fixed-partition"

    def __init__(
        self,
        machine: MachineConfig,
        max_ii_span: int = 48,
        options: Optional[EngineOptions] = None,
        partitioner: Optional[MultilevelPartitioner] = None,
    ) -> None:
        super().__init__(machine, max_ii_span, options)
        self.partitioner = partitioner or MultilevelPartitioner(machine)
        self.partition: Optional[Partition] = None
        self._partitions_computed = 0
        # (partition, EngineOptions) pair; see _engine_options.
        self._options_cache = None

    def _prepare(self, loop: Loop, start_ii: int) -> None:
        self._partitions_computed = 0
        self._options_cache = None
        self.partition = self._compute_partition(loop, start_ii)

    def _compute_partition(self, loop: Loop, ii: int) -> Partition:
        self._partitions_computed += 1
        if not self.machine.is_clustered:
            return trivial_partition(loop, ii)
        return self.partitioner.partition(loop, ii)

    def _policy(self, loop: Loop, ii: int) -> ClusterPolicy:
        assert self.partition is not None
        return FixedClusterPolicy(self.partition.assignment)

    def _engine_options(self, loop: Loop) -> EngineOptions:
        assert self.partition is not None
        # The per-cluster memory-op counts are a pure function of the
        # partition, which only changes when a recompute is adopted — cache
        # them by partition identity so the II search stops re-scanning the
        # loop's operations on every attempt.
        cached = self._options_cache
        if cached is not None and cached[0] is self.partition:
            return cached[1]
        options = replace(
            self.options,
            mem_ops_per_cluster=_mem_ops_per_cluster(loop, self.partition),
        )
        self._options_cache = (self.partition, options)
        return options


class GPScheduler(FixedPartitionScheduler):
    """The paper's GP scheme: partition-guided with selective recompute."""

    name = "gp"

    #: Consecutive rejected recomputations after which GP stops trying —
    #: once higher-II partitions stop pricing better, further ones won't.
    max_futile_recomputes = 2

    def _prepare(self, loop: Loop, start_ii: int) -> None:
        super()._prepare(loop, start_ii)
        self._futile_recomputes = 0

    def _policy(self, loop: Loop, ii: int) -> ClusterPolicy:
        assert self.partition is not None
        return AssignedFirstPolicy(
            self.partition.assignment, self.machine.num_clusters
        )

    def _on_failure(self, loop: Loop, failed_ii: int, next_ii: int) -> None:
        assert self.partition is not None
        if not self.machine.is_clustered:
            return
        if (
            self.partition.ii_bus > next_ii
            and self._futile_recomputes < self.max_futile_recomputes
        ):
            # The bus bound still exceeds the II we are about to try: a new
            # partition can reduce IIbus, so recompute (§3.1) — but adopt it
            # only when it actually prices better than the partition we
            # already have at the new interval, otherwise keep the current
            # one (recomputation at a looser II can over-gather clusters).
            from ..partition.estimator import PartitionEstimator

            candidate = self._compute_partition(loop, next_ii)
            current_price = PartitionEstimator(
                loop, self.machine, next_ii
            ).estimate(self.partition.assignment)
            if candidate.estimate.exec_time < current_price.exec_time:
                self.partition = candidate
                self._futile_recomputes = 0
            else:
                self._futile_recomputes += 1


#: Name -> scheduler class, for the evaluation harness and the CLI examples.
SCHEDULERS = {
    cls.name: cls
    for cls in (UnifiedScheduler, UracamScheduler, FixedPartitionScheduler, GPScheduler)
}
