"""Minimum initiation interval bounds.

``MII = max(ResMII, RecMII)``:

* **ResMII** — resource bound: for each functional-unit class, the
  operations of that class divided by the machine's total units of the
  class (pre-partition, the optimistic machine-wide bound the paper feeds
  to the partitioner).
* **RecMII** — recurrence bound: implemented in :mod:`repro.ir.analysis`
  and re-exported here.
"""

from __future__ import annotations

import math

from ..ir.analysis import rec_mii
from ..ir.ddg import DataDependenceGraph
from ..ir.loop import Loop
from ..machine.config import MachineConfig
from ..ir.opcodes import OpClass

__all__ = ["rec_mii", "res_mii", "mii"]


def res_mii(ddg: DataDependenceGraph, machine: MachineConfig) -> int:
    """Machine-wide resource-constrained minimum initiation interval."""
    worst = 1
    for op_class in OpClass:
        count = sum(1 for op in ddg.operations() if op.op_class is op_class)
        if count == 0:
            continue
        units = machine.total_units_for_class(op_class)
        if units == 0:
            raise ValueError(
                f"machine {machine.name!r} has no units for {op_class} operations"
            )
        worst = max(worst, math.ceil(count / units))
    return worst


def mii(loop: Loop, machine: MachineConfig) -> int:
    """The paper's MII: max of the resource and recurrence bounds."""
    return max(res_mii(loop.ddg, machine), rec_mii(loop.ddg))
