"""Command-line interface: ``python -m repro <command>``.

Every command is a thin request builder over the typed service façade
(:mod:`repro.service`): arguments become
:class:`~repro.service.requests.ScheduleRequest` /
:class:`~repro.service.requests.EvaluationRequest` objects, names
resolve through the scheduler/machine registries, and one
:class:`~repro.service.session.ReproService` session per invocation
owns the worker pool (and the response cache every figure panel within
that invocation shares).

Commands:

* ``schedule`` — schedule one kernel (or a JSON loop file) on a machine
  with one algorithm; prints the kernel listing and the statistics.
* ``evaluate`` — run a figure panel of the paper's evaluation on the
  synthetic suite and print the table (optionally CSV/JSON).
* ``bench`` — run the Table 2 timing on a chosen machine preset and print
  the scheduling CPU seconds per scheduler (a perf check without pytest);
  ``--json`` writes the timings to a file for CI artifacts.
* ``workloads`` — describe the synthetic suite's loop shapes.
* ``machines`` — list the built-in machine configurations.
* ``serve`` — run the persistent scheduling daemon: one warm worker
  pool answering serialized requests over a unix socket (JSON lines),
  shutting itself down after an idle timeout; ``serve --stop`` stops a
  running daemon.
* ``cache`` — inspect a content-addressed result store
  (``stats`` / ``verify`` / ``clear``).

``evaluate`` and ``bench`` take ``--store SPEC`` to attach a persistent
content-addressed result store (``memory``, ``disk``, ``disk:PATH`` or
a bare path): identical requests across invocations are replayed from
the store byte-identically instead of re-scheduled, and a cache
counters line goes to stderr so pipelines can assert replay rates
without disturbing stdout.  ``--daemon`` routes the run through the
``repro serve`` daemon (auto-spawned on first use; ``--socket PATH``
picks the endpoint), so repeated CLI invocations share one warm pool
and one response cache.

``evaluate`` and ``bench`` take ``--suite paper|extended`` to pick the
workload tier (the paper's 40 loops vs. the 220-loop production-scale
tier) and ``--jobs N`` to fan per-loop scheduling out over N worker
processes (``0`` = one per CPU; results are bit-identical to ``--jobs
1``).  ``--chunksize`` batches several loops per worker task (default:
an automatic heuristic) and one worker pool is shared across everything
a single invocation runs.  ``--mp-context spawn|forkserver`` picks the
worker start method (default: ``forkserver`` where the platform has it).
``evaluate --verify`` is the slow paranoid mode: every engine commit
cross-checks the incremental pressure state and every schedule is
re-validated with ``full_recheck=True``.  ``evaluate --validate-each``
is the production posture: every modulo schedule is re-validated through
the cached sessions, in the worker that produced it, so the
sweep-integrated validation cost is measured rather than skipped.

Parallel runs are fault tolerant: worker deaths and deadline misses are
retried on a self-healing pool (``--max-attempts``, ``--deadline``),
degrading to in-process execution if workers keep dying — results stay
bit-identical throughout.  ``evaluate --keep-going`` collects per-loop
failures into a report (stderr, exit code 3) instead of aborting;
``--fault-plan`` injects a deterministic JSON fault plan for testing
the machinery itself (see :mod:`repro.eval.faults`).

Examples::

    python -m repro schedule --kernel daxpy --machine 2x32 --algorithm gp
    python -m repro evaluate --clusters 4 --registers 32 --programs 3
    python -m repro evaluate --suite extended --jobs 0
    python -m repro bench --machine 4x64 --programs 3 --json bench.json
    python -m repro workloads --program swim
    python -m repro machines
    python -m repro evaluate --store disk:~/.cache/repro/store
    python -m repro evaluate --daemon
    python -m repro serve --jobs 0 --store disk
    python -m repro cache stats --store disk
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional

from .errors import ReproError
from .ir.serialize import load as load_loop
from .ir.stats import describe
from .machine.config import MachineConfig
from .machine.presets import table1_configurations
from .machine.spec import parse_machine_spec
from .schedule.expand import render_kernel
from .service import (
    MACHINES,
    SCHEDULERS,
    FaultPlan,
    ReproService,
    RetryPolicy,
    ScheduleRequest,
)
from .workloads.kernels import KERNELS
from .workloads.spec import (
    PROGRAM_NAMES,
    SUITE_TIERS,
    make_benchmark,
    make_extended_benchmark,
    suite_for_tier,
)


def parse_machine(spec: str) -> MachineConfig:
    """Deprecated: use :func:`repro.machine.parse_machine_spec`.

    Thin shim over the canonical parser (which also backs the service
    façade's :data:`~repro.service.MACHINES` registry); kept so old
    scripts keep running, with a :class:`DeprecationWarning`.
    """
    warnings.warn(
        "repro.cli.parse_machine() is deprecated; use "
        "repro.machine.parse_machine_spec() or the "
        "repro.service.MACHINES registry",
        DeprecationWarning,
        stacklevel=2,
    )
    return parse_machine_spec(spec)


def _cmd_schedule(args: argparse.Namespace) -> int:
    if args.loop_file:
        request = ScheduleRequest(
            loop=load_loop(args.loop_file),
            machine=args.machine,
            scheduler=args.algorithm,
            # One interactive loop: the independent full recheck is nearly
            # free and keeps this command's validation engine-independent.
            full_recheck=True,
        )
    else:
        if args.kernel not in KERNELS:
            print(f"unknown kernel {args.kernel!r}; available: {sorted(KERNELS)}")
            return 2
        request = ScheduleRequest(
            kernel=args.kernel,
            machine=args.machine,
            scheduler=args.algorithm,
            full_recheck=True,
        )
    with ReproService() as service:
        outcome = service.schedule(request).outcome
    print(describe(outcome.loop))
    print(f"machine: {outcome.machine.describe()}")
    print()
    if outcome.is_modulo:
        schedule = outcome.schedule
        print(render_kernel(schedule))
        print()
        stats = schedule.stats
        print(
            f"II={schedule.ii} stages={schedule.stage_count} "
            f"IPC={outcome.ipc():.3f} bus={stats.bus_transfers} "
            f"mem-comms={stats.mem_comms} spills={stats.spills} "
            f"attempts={stats.ii_attempts}"
        )
    else:
        print(
            f"modulo scheduling not profitable; list schedule of "
            f"{outcome.schedule.length} cycles/iteration, IPC={outcome.ipc():.3f}"
        )
    return 0


def _pick_suite(args: argparse.Namespace):
    suite = suite_for_tier(getattr(args, "suite", "paper"))
    return suite[: args.programs] if args.programs else suite


def _fault_tolerance_kwargs(args: argparse.Namespace) -> dict:
    """``ReproService`` fault-tolerance arguments from suite options.

    The CLI always runs with the production retry posture (transients
    are retried, the pool self-heals, degradation beats aborting) —
    with no faults this changes nothing observable, since retries only
    engage on worker death, hangs, or deadline misses.
    """
    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        deadline=args.deadline,
    )
    faults = FaultPlan.load(args.fault_plan) if args.fault_plan else None
    return {
        "policy": policy,
        "faults": faults,
        "keep_going": getattr(args, "keep_going", False),
    }


def _service_for(args: argparse.Namespace):
    """The session for one CLI run: local, or the daemon client.

    ``--daemon`` swaps the in-process :class:`ReproService` for a
    :class:`~repro.service.client.ServiceClient` — same surface, so the
    figure/table code downstream does not care.  The execution knobs
    (``--jobs``, ``--chunksize``, ``--mp-context``, ``--store``) then
    configure the daemon *if this run spawns it*; an already-running
    daemon keeps its own settings.
    """
    if getattr(args, "daemon", False):
        from .errors import DaemonError
        from .service import ServiceClient

        if args.fault_plan:
            raise DaemonError(
                "--fault-plan injects faults into an in-process session; "
                "drop --daemon to use it"
            )
        from .service import WireFaultPlan, WireRetryPolicy

        chaos = (
            WireFaultPlan.load(args.wire_fault_plan)
            if getattr(args, "wire_fault_plan", None)
            else None
        )
        return ServiceClient(
            endpoint=args.socket,
            keep_going=getattr(args, "keep_going", False),
            jobs=args.jobs,
            chunksize=args.chunksize,
            mp_context=args.mp_context,
            store=args.store,
            retry=WireRetryPolicy(max_attempts=args.wire_retries),
            call_deadline=getattr(args, "call_deadline", None),
            chaos=chaos,
        )
    return ReproService(
        jobs=args.jobs,
        chunksize=args.chunksize,
        mp_context=args.mp_context,
        store=args.store,
        **_fault_tolerance_kwargs(args),
    )


def _cache_stats_line(service) -> str:
    """The stderr cache/store counters line (stdout stays byte-clean).

    Session-level ``cache:`` counters first (a warm replay shows
    ``misses=0``), then the store's own counters when one is attached —
    locally from the store object, in daemon mode from the server's
    ``stats`` op.
    """
    parts = [f"cache: hits={service.cache_hits} misses={service.cache_misses}"]
    store = getattr(service, "store", None)
    if store is not None:
        stats = store.stats()
    elif hasattr(service, "stats") and not getattr(service, "degraded", False):
        try:
            stats = service.stats().get("store")
        except ReproError:
            # The daemon died after serving us (or the wire is still
            # faulty): the counters line is telemetry, never a failure.
            stats = None
    else:
        stats = None
    if stats:
        parts.append(
            "store: backend={backend} entries={entries} bytes={bytes} "
            "hits={hits} misses={misses} evictions={evictions}".format(**stats)
        )
    wire = getattr(service, "wire", None)
    if wire is not None:
        parts.append(
            f"wire: attempts={wire.attempts} retries={wire.retries} "
            f"reconnects={wire.reconnects} degraded={wire.degraded_calls}"
        )
    return "  ".join(parts)


def _suite_engine_options(args: argparse.Namespace):
    """EngineOptions for a suite command, or None when all-defaults.

    Folds ``--verify`` (evaluate only) and the ``--no-array-kernels`` /
    ``--no-warm-start`` A/B knobs into one explicit options object —
    requests reject ``verify`` and ``options`` together, so the paranoid
    flags must ride in the same EngineOptions as the kernel toggles.
    Returns None when nothing deviates from the defaults, keeping
    default invocations' request fingerprints (and store keys) stable.
    """
    from .schedule.engine import EngineOptions

    verify = getattr(args, "verify", False)
    array_kernels = getattr(args, "array_kernels", True)
    warm_start = getattr(args, "ii_warm_start", True)
    if not verify and array_kernels and warm_start:
        return None
    return EngineOptions(
        verify_pressure=verify,
        validate_schedules=verify,
        array_kernels=array_kernels,
        ii_warm_start=warm_start,
    )


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .eval.export import figure_to_csv, figure_to_json
    from .eval.figures import figure2_panel, figure3_panel

    suite = _pick_suite(args)
    # --verify is the paranoid end-to-end mode: incremental-vs-reference
    # pressure cross-checks inside the engine, plus a full_recheck
    # validation of every schedule before it is reported.
    options = _suite_engine_options(args)
    with _service_for(args) as service:
        if args.bus_latency == 2:
            panel = figure3_panel(
                args.registers, suite=suite, options=options,
                validate_each=args.validate_each, service=service,
            )
        else:
            panel = figure2_panel(
                args.clusters, args.registers, suite=suite, options=options,
                validate_each=args.validate_each, service=service,
            )
        stats_line = (
            _cache_stats_line(service) if (args.store or args.daemon) else None
        )
    if args.format == "csv":
        print(figure_to_csv(panel), end="")
    elif args.format == "json":
        print(figure_to_json(panel))
    else:
        print(panel.render())
        print()
        print(
            f"GP over URACAM: {panel.gain_percent('gp', 'uracam'):+.1f}%  "
            f"GP over Fixed: {panel.gain_percent('gp', 'fixed-partition'):+.1f}%"
        )
    if stats_line:
        print(stats_line, file=sys.stderr)
    if args.keep_going:
        # Stderr, so csv/json stdout (and the CI byte-diff) stay clean.
        report = service.failure_report()
        print(report.render(), file=sys.stderr)
        if report:
            return 3
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    make = make_benchmark if args.suite == "paper" else make_extended_benchmark
    names = [args.program] if args.program else list(PROGRAM_NAMES)
    for name in names:
        benchmark = make(name)
        print(f"{name}: ({len(benchmark.loops)} loops)")
        for loop in benchmark.loops:
            print(f"  {describe(loop)}")
    return 0


#: Rows kept by ``bench --profile`` (stderr table and the JSON block).
_PROFILE_TOP = 25


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json
    import os
    import time as _time

    from .eval.figures import table2

    suite = _pick_suite(args)
    options = _suite_engine_options(args)
    if args.profile and args.jobs != 1:
        # cProfile only sees the driving process; worker-pool scheduling
        # would profile IPC plumbing instead of the schedulers.
        print(
            f"warning: --profile forces --jobs 1 (was {args.jobs})",
            file=sys.stderr,
        )
        args.jobs = 1
    with _service_for(args) as service:
        machine = service.resolve_machine(args.machine)
        jobs = service.jobs
        cpu_count = os.cpu_count() or 1
        oversubscribed = jobs > cpu_count
        if oversubscribed:
            # The per-loop timers measure elapsed time, so more workers than
            # cores inflates every number through contention: annotate instead
            # of letting the artifact silently report a "slowdown".
            print(
                f"warning: --jobs {jobs} oversubscribes this host "
                f"({cpu_count} CPU{'s' if cpu_count != 1 else ''}); parallel "
                "wall clock measures contention, not speedup",
                file=sys.stderr,
            )
        profile_block = None
        started = _time.perf_counter()
        if args.profile:
            import cProfile
            import io
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            result = table2(suite, [machine], service=service, options=options)
            profiler.disable()
            wall_seconds = _time.perf_counter() - started
            stats = pstats.Stats(profiler)
            rendered = io.StringIO()
            pstats.Stats(profiler, stream=rendered).sort_stats(
                "cumulative"
            ).print_stats(_PROFILE_TOP)
            print(rendered.getvalue(), file=sys.stderr, end="")
            entries = [
                {
                    "function": f"{path}:{line}({name})",
                    "ncalls": ncalls,
                    "tottime": tottime,
                    "cumtime": cumtime,
                }
                for (path, line, name), (
                    _cc, ncalls, tottime, cumtime, _callers,
                ) in stats.stats.items()
            ]
            entries.sort(key=lambda entry: entry["cumtime"], reverse=True)
            profile_block = {
                "sorted_by": "cumulative",
                "top": entries[:_PROFILE_TOP],
            }
        else:
            result = table2(suite, [machine], service=service, options=options)
            wall_seconds = _time.perf_counter() - started
        stats_line = (
            _cache_stats_line(service) if (args.store or args.daemon) else None
        )
    print(result.render())
    config = result.configs[0]
    per = result.seconds[config]
    print()
    print(
        "schedule CPU seconds per benchmark "
        f"({len(suite)} benchmarks, {config}):"
    )
    for name in ("uracam", "fixed-partition", "gp"):
        print(f"  {name:16s} {per[name]:.4f}")
    print(f"suite wall clock: {wall_seconds:.2f}s (jobs={jobs})")
    if args.json:
        payload = {
            "schema": "repro-bench-cli/v5",
            "machine": config,
            "suite": args.suite,
            "benchmarks": len(suite),
            "loops": sum(len(b.loops) for b in suite),
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "oversubscribed": oversubscribed,
            "engine_options": {
                "array_kernels": getattr(args, "array_kernels", True),
                "ii_warm_start": getattr(args, "ii_warm_start", True),
            },
            "cpu_seconds_per_benchmark": dict(per),
            "wall_seconds": wall_seconds,
            # What the fault-tolerance layer had to do during the run
            # (all zeros on a healthy host: no retries, no rebuilds).
            "fault_tolerance": service.telemetry.to_dict(),
            # Transport counters when the run went over the daemon wire
            # (retries/reconnects/degradations); null on local runs.
            "wire": (
                service.wire_stats()
                if hasattr(service, "wire_stats")
                else None
            ),
        }
        if profile_block is not None:
            payload["profile"] = profile_block
        with open(args.json, "w") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if stats_line:
        print(stats_line, file=sys.stderr)
    return 0


def _cmd_serve_status(args: argparse.Namespace) -> int:
    """``repro serve --status``: render the daemon's health, with exit
    codes pipelines can branch on (0 running, 4 draining, 3 absent)."""
    from .errors import DaemonError
    from .service import ServiceClient, WireRetryPolicy

    client = ServiceClient(
        endpoint=args.socket, autospawn=False, retry=WireRetryPolicy.none()
    )
    try:
        stats = client.stats()
    except DaemonError:
        print("no daemon running", file=sys.stderr)
        return 3
    finally:
        client.close()
    server = stats["server"]
    draining = bool(server.get("draining"))
    print(f"state:       {'draining' if draining else 'running'}")
    print(f"pid:         {server.get('pid')}")
    print(f"endpoint:    {server.get('endpoint')}")
    print(f"version:     {server.get('version')} ({server.get('schema')})")
    print(f"uptime:      {server.get('uptime_seconds', 0.0):.1f}s")
    print(f"jobs:        {server.get('jobs')}")
    print(
        f"connections: {server.get('active_connections')} active "
        f"(max {server.get('max_clients')}), "
        f"{server.get('in_flight')} request(s) in flight"
    )
    wire = stats.get("wire") or {}
    if wire:
        print(
            "wire:        "
            f"connections={wire.get('connections')} "
            f"busy_rejected={wire.get('busy_rejected')} "
            f"coalesced={wire.get('coalesced')} "
            f"read_timeouts={wire.get('read_timeouts')} "
            f"deadline_misses={wire.get('deadline_misses')} "
            f"requests={wire.get('requests_served')}"
        )
    cache = stats.get("cache") or {}
    print(
        f"cache:       hits={cache.get('hits')} misses={cache.get('misses')}"
    )
    store = stats.get("store")
    if store:
        print(
            "store:       backend={backend} entries={entries} bytes={bytes} "
            "hits={hits} misses={misses} evictions={evictions} "
            "write_errors={write_errors} quarantined={quarantined}".format(
                **store
            )
        )
    return 4 if draining else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .errors import DaemonError
    from .service.daemon import DEFAULT_IDLE_TIMEOUT, ReproDaemon, parse_endpoint

    if args.status:
        return _cmd_serve_status(args)
    if args.stop:
        from .service import WireRetryPolicy
        from .service.client import ServiceClient

        client = ServiceClient(
            endpoint=args.socket, autospawn=False, retry=WireRetryPolicy.none()
        )
        try:
            client.connect()
        except DaemonError:
            print("no daemon running", file=sys.stderr)
            return 0
        pid = client.server.get("pid")
        already_draining = bool(client.server.get("draining"))
        client.shutdown_server()
        if already_draining:
            print(f"daemon already draining (pid {pid})", file=sys.stderr)
        else:
            print(f"daemon stopped (pid {pid})", file=sys.stderr)
        return 0
    idle_timeout = args.idle_timeout
    if idle_timeout is None:
        idle_timeout = DEFAULT_IDLE_TIMEOUT
    elif idle_timeout <= 0:
        idle_timeout = None  # 0 = serve until stopped
    store = args.store
    if args.store_fsync and store is not None:
        from .service.store import open_store

        store = open_store(store, fsync=True)
    chaos = None
    if args.wire_fault_plan:
        from .service import WireFaultPlan

        chaos = WireFaultPlan.load(args.wire_fault_plan)
    daemon = ReproDaemon(
        endpoint=args.socket,
        jobs=args.jobs,
        chunksize=args.chunksize,
        mp_context=args.mp_context,
        store=store,
        idle_timeout=idle_timeout,
        policy=RetryPolicy(
            max_attempts=args.max_attempts, deadline=args.deadline
        ),
        max_clients=args.max_clients,
        drain_timeout=args.drain_timeout,
        io_timeout=args.io_timeout if args.io_timeout > 0 else None,
        chaos=chaos,
        # A real daemon process may honour an injected crash fault; an
        # in-thread daemon (tests) never does.
        allow_crash=chaos is not None,
    )
    family, address = parse_endpoint(args.socket)
    endpoint = address if family == "unix" else f"tcp:{address[0]}:{address[1]}"
    timeout_note = "none" if idle_timeout is None else f"{idle_timeout:g}s"
    print(
        f"repro daemon serving on {endpoint} "
        f"(pid {os.getpid()}, idle timeout {timeout_note}, "
        f"max {args.max_clients} clients)",
        file=sys.stderr,
    )
    daemon.serve_forever()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .errors import CodecError
    from .service.codec import loads_response
    from .service.store import open_store

    store = open_store(args.store)
    try:
        if args.action == "stats":
            stats = store.stats()
            print(f"backend:   {stats['backend']}")
            if hasattr(store, "root"):
                print(f"root:      {store.root}")
            print(f"entries:   {stats['entries']}")
            print(f"bytes:     {stats['bytes']}")
            budget = stats["max_bytes"]
            print(f"max_bytes: {'unlimited' if budget is None else budget}")
            return 0
        if args.action == "clear":
            removed = store.clear()
            print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
            return 0
        # verify: decode every entry and cross-check its content address.
        ok = 0
        corrupt = []
        for fingerprint in store.keys():
            text = store.get(fingerprint)
            if text is None:
                continue
            try:
                response = loads_response(text)
                if response.meta.fingerprint != fingerprint:
                    raise CodecError(
                        f"entry {fingerprint[:12]} holds a response "
                        f"fingerprinted {response.meta.fingerprint[:12]}"
                    )
            except CodecError as error:
                corrupt.append((fingerprint, str(error)))
                if args.purge:
                    store.delete(fingerprint)
                continue
            ok += 1
        print(f"verified {ok} entr{'y' if ok == 1 else 'ies'}")
        for fingerprint, reason in corrupt:
            action = "purged" if args.purge else "corrupt"
            print(f"{action}: {fingerprint} ({reason})", file=sys.stderr)
        if corrupt:
            print(
                f"{len(corrupt)} corrupt entr"
                f"{'y' if len(corrupt) == 1 else 'ies'}"
                + ("" if args.purge else " (re-run with --purge to drop them)"),
                file=sys.stderr,
            )
            return 0 if args.purge else 1
        return 0
    finally:
        store.close()


def _cmd_machines(args: argparse.Namespace) -> int:
    print("Table 1 configurations:")
    for config in table1_configurations():
        print(f"  {config.describe()}")
    print("DSP presets:")
    for name in MACHINES.names():
        print(f"  {name}: {MACHINES.resolve(name).describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph-partitioning based instruction scheduling "
        "for clustered processors (MICRO-34 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sched = sub.add_parser("schedule", help="schedule one loop")
    p_sched.add_argument("--kernel", default="daxpy",
                         help=f"built-in kernel ({', '.join(sorted(KERNELS))})")
    p_sched.add_argument("--loop-file", default=None,
                         help="JSON loop file (overrides --kernel)")
    p_sched.add_argument("--machine", default="2x32",
                         help="NxR[xB[xL]] or c6x/lx/tigersharc")
    p_sched.add_argument("--algorithm", default="gp",
                         choices=SCHEDULERS.names())
    p_sched.set_defaults(func=_cmd_schedule)

    def add_suite_options(p) -> None:
        p.add_argument("--suite", default="paper", choices=SUITE_TIERS,
                       help="workload tier: the paper's 40 loops or the "
                       "220-loop extended tier")
        p.add_argument("--programs", type=int, default=0,
                       help="limit to the first N programs (0 = all)")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for per-loop scheduling "
                       "(1 = sequential, 0 = one per CPU)")
        p.add_argument("--chunksize", type=int, default=None,
                       help="loops batched per worker task (default: "
                       "automatic heuristic; results are identical at "
                       "any value)")
        p.add_argument("--mp-context", default=None,
                       choices=("spawn", "forkserver"),
                       help="worker start method (default: forkserver "
                       "where the platform offers it; results are "
                       "identical under either)")
        p.add_argument("--max-attempts", type=int, default=3,
                       help="executions allowed per work chunk before a "
                       "transient fault (worker death, deadline miss) "
                       "gives up (1 = never retry)")
        p.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-chunk wall-clock deadline; a chunk "
                       "held past it is retried on a rebuilt pool "
                       "(default: none)")
        p.add_argument("--fault-plan", default=None, metavar="PATH",
                       help="JSON fault-injection plan (testing/CI "
                       "only): injects worker crashes/hangs/raises at "
                       "planned loops to exercise the retry layer")
        p.add_argument("--store", default=None, metavar="SPEC",
                       help="content-addressed result store: 'memory', "
                       "'disk' (the default cache root), 'disk:PATH' or "
                       "a bare path; identical requests replay from the "
                       "store byte-identically across invocations")
        p.add_argument("--daemon", action="store_true",
                       help="run through the persistent 'repro serve' "
                       "daemon (auto-spawned on first use), sharing one "
                       "warm worker pool and response cache across "
                       "invocations")
        p.add_argument("--socket", default=None, metavar="ENDPOINT",
                       help="daemon endpoint: a unix socket path or "
                       "tcp:PORT (default: the per-user socket, "
                       "$REPRO_DAEMON_SOCKET)")
        p.add_argument("--wire-retries", type=int, default=3,
                       metavar="N",
                       help="with --daemon: attempts per wire operation "
                       "before degrading to in-process execution "
                       "(retried faults are safe — every op is "
                       "idempotent by content fingerprint)")
        p.add_argument("--call-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="with --daemon: per-request deadline carried "
                       "on the wire; the daemon answers a structured "
                       "timeout instead of a late result")
        p.add_argument("--wire-fault-plan", default=None, metavar="PATH",
                       help="with --daemon (testing/CI only): JSON "
                       "wire-fault plan injected at this client's end "
                       "(refused connects, dropped/garbled replies, "
                       "stalls) to exercise the wire retry layer")
        p.add_argument("--no-array-kernels", dest="array_kernels",
                       action="store_false",
                       help="force the pure dict/list reference hot path "
                       "instead of the flat-array kernels (results are "
                       "bit-identical under either; A/B smoke knob)")
        p.add_argument("--no-warm-start", dest="ii_warm_start",
                       action="store_false",
                       help="disable II-search warm-start seeding "
                       "(results are bit-identical under either)")

    p_eval = sub.add_parser("evaluate", help="run a figure panel")
    p_eval.add_argument("--clusters", type=int, default=2, choices=(2, 4))
    p_eval.add_argument("--registers", type=int, default=32, choices=(32, 64))
    p_eval.add_argument("--bus-latency", type=int, default=1, choices=(1, 2))
    p_eval.add_argument("--verify", action="store_true",
                        help="paranoid mode: cross-check the incremental "
                        "pressure accounting at every engine commit and "
                        "re-validate every schedule with full_recheck")
    p_eval.add_argument("--validate-each", action="store_true",
                        help="re-validate every modulo schedule through "
                        "its cached sessions as it is produced (the "
                        "sweep-integrated validation cost)")
    p_eval.add_argument("--keep-going", action="store_true",
                        help="partial-results mode: collect per-loop "
                        "failures into a failure report (printed to "
                        "stderr; exit code 3) instead of aborting on "
                        "the first one")
    add_suite_options(p_eval)
    p_eval.add_argument("--format", default="table",
                        choices=("table", "csv", "json"))
    p_eval.set_defaults(func=_cmd_evaluate)

    p_bench = sub.add_parser(
        "bench",
        help="time the schedulers (Table 2) on one machine preset",
    )
    p_bench.add_argument("--machine", default="4x64",
                         help="NxR[xB[xL]] or c6x/lx/tigersharc")
    add_suite_options(p_bench)
    p_bench.add_argument("--json", default=None, metavar="PATH",
                         help="also write the timings as JSON (CI artifact)")
    p_bench.add_argument("--profile", action="store_true",
                         help="run the Table 2 loops under cProfile "
                         "(forces --jobs 1); prints the top cumulative "
                         "entries to stderr and adds a 'profile' block "
                         "to --json")
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent scheduling daemon (one warm pool, "
        "JSON-lines over a unix socket)",
    )
    p_serve.add_argument("--socket", default=None, metavar="ENDPOINT",
                         help="endpoint to serve on: a unix socket path "
                         "or tcp:PORT (default: the per-user socket)")
    p_serve.add_argument("--jobs", type=int, default=0,
                         help="worker processes (default 0 = one per "
                         "CPU; the daemon exists to keep a pool warm)")
    p_serve.add_argument("--chunksize", type=int, default=None,
                         help="loops batched per worker task")
    p_serve.add_argument("--mp-context", default=None,
                         choices=("spawn", "forkserver"),
                         help="worker start method")
    p_serve.add_argument("--store", default=None, metavar="SPEC",
                         help="attach a persistent result store "
                         "('memory', 'disk', 'disk:PATH' or a path)")
    p_serve.add_argument("--idle-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="exit after this long without a "
                         "connection (default 300; 0 = serve forever)")
    p_serve.add_argument("--max-attempts", type=int, default=3,
                         help="executions allowed per work chunk before "
                         "a transient fault gives up")
    p_serve.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-chunk wall-clock deadline")
    p_serve.add_argument("--max-clients", type=int, default=8,
                         metavar="N",
                         help="concurrent connections served before "
                         "excess connects get a structured busy reply "
                         "(default 8)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="on shutdown/SIGTERM: how long to wait "
                         "for in-flight requests before closing "
                         "(default 30)")
    p_serve.add_argument("--io-timeout", type=float, default=300.0,
                         metavar="SECONDS",
                         help="per-connection socket read/write timeout "
                         "(default 300; 0 = none)")
    p_serve.add_argument("--store-fsync", action="store_true",
                         help="fsync store writes (crash-durable puts "
                         "at the cost of two fsyncs per entry)")
    p_serve.add_argument("--wire-fault-plan", default=None, metavar="PATH",
                         help="testing/CI only: JSON wire-fault plan "
                         "injected at the daemon end (dropped/garbled "
                         "replies, stalls, accept-then-close, a planned "
                         "crash mid-request)")
    p_serve.add_argument("--stop", action="store_true",
                         help="ask the running daemon to drain and shut "
                         "down instead of serving")
    p_serve.add_argument("--status", action="store_true",
                         help="report a running daemon's health (exit "
                         "0 running, 4 draining, 3 absent) instead of "
                         "serving")
    p_serve.set_defaults(func=_cmd_serve)

    p_cache = sub.add_parser(
        "cache",
        help="inspect a content-addressed result store",
    )
    p_cache.add_argument("action", choices=("stats", "verify", "clear"),
                         help="stats: counters and size; verify: decode "
                         "every entry and cross-check its content "
                         "address; clear: delete every entry")
    p_cache.add_argument("--store", default="disk", metavar="SPEC",
                         help="store spec: 'memory', 'disk' (default), "
                         "'disk:PATH' or a bare path")
    p_cache.add_argument("--purge", action="store_true",
                         help="with verify: delete the corrupt entries "
                         "found instead of just reporting them")
    p_cache.set_defaults(func=_cmd_cache)

    p_work = sub.add_parser("workloads", help="describe the synthetic suite")
    p_work.add_argument("--program", default=None, choices=PROGRAM_NAMES)
    p_work.add_argument("--suite", default="paper", choices=SUITE_TIERS)
    p_work.set_defaults(func=_cmd_workloads)

    p_mach = sub.add_parser("machines", help="list machine configurations")
    p_mach.set_defaults(func=_cmd_machines)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
