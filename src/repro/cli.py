"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``schedule`` — schedule one kernel (or a JSON loop file) on a machine
  with one algorithm; prints the kernel listing and the statistics.
* ``evaluate`` — run a figure panel of the paper's evaluation on the
  synthetic suite and print the table (optionally CSV/JSON).
* ``bench`` — run the Table 2 timing on a chosen machine preset and print
  the scheduling CPU seconds per scheduler (a perf check without pytest);
  ``--json`` writes the timings to a file for CI artifacts.
* ``workloads`` — describe the synthetic suite's loop shapes.
* ``machines`` — list the built-in machine configurations.

``evaluate`` and ``bench`` take ``--suite paper|extended`` to pick the
workload tier (the paper's 40 loops vs. the 220-loop production-scale
tier) and ``--jobs N`` to fan per-loop scheduling out over N worker
processes (``0`` = one per CPU; results are bit-identical to ``--jobs
1``).  ``--chunksize`` batches several loops per worker task (default:
an automatic heuristic) and one worker pool is shared across everything
a single invocation runs.  ``--mp-context spawn|forkserver`` picks the
worker start method (default: ``forkserver`` where the platform has it).
``evaluate --verify`` is the slow paranoid mode: every engine commit
cross-checks the incremental pressure state and every schedule is
re-validated with ``full_recheck=True``.  ``evaluate --validate-each``
is the production posture: every modulo schedule is re-validated through
the cached sessions, in the worker that produced it, so the
sweep-integrated validation cost is measured rather than skipped.

Examples::

    python -m repro schedule --kernel daxpy --machine 2x32 --algorithm gp
    python -m repro evaluate --clusters 4 --registers 32 --programs 3
    python -m repro evaluate --suite extended --jobs 0
    python -m repro bench --machine 4x64 --programs 3 --json bench.json
    python -m repro workloads --program swim
    python -m repro machines
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .errors import ReproError
from .ir.serialize import load as load_loop
from .ir.stats import describe
from .machine.config import MachineConfig
from .machine.dsp import DSP_PRESETS
from .machine.presets import clustered, table1_configurations, unified
from .schedule.drivers import SCHEDULERS
from .schedule.expand import render_kernel
from .workloads.kernels import KERNELS
from .workloads.spec import (
    PROGRAM_NAMES,
    SUITE_TIERS,
    make_benchmark,
    make_extended_benchmark,
    suite_for_tier,
)


def parse_machine(spec: str) -> MachineConfig:
    """Parse a machine spec: ``NxR[xB[xL]]`` or a DSP preset name.

    ``2x32`` = 2 clusters, 32 total registers; optional third/fourth fields
    set the bus count and bus latency (``4x64x2x2``).  ``1xR`` is the
    unified machine.  Preset names: ``c6x``, ``lx``, ``tigersharc``.
    """
    if spec in DSP_PRESETS:
        return DSP_PRESETS[spec]()
    parts = spec.lower().split("x")
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise ReproError(
            f"bad machine spec {spec!r}; use NxR[xB[xL]] or one of "
            f"{sorted(DSP_PRESETS)}"
        ) from None
    if len(numbers) < 2:
        raise ReproError(f"bad machine spec {spec!r}")
    num_clusters, registers = numbers[0], numbers[1]
    buses = numbers[2] if len(numbers) > 2 else 1
    latency = numbers[3] if len(numbers) > 3 else 1
    if num_clusters == 1:
        return unified(registers)
    return clustered(num_clusters, registers, buses, latency)


def _cmd_schedule(args: argparse.Namespace) -> int:
    machine = parse_machine(args.machine)
    if args.loop_file:
        loop = load_loop(args.loop_file)
    else:
        if args.kernel not in KERNELS:
            print(f"unknown kernel {args.kernel!r}; available: {sorted(KERNELS)}")
            return 2
        loop = KERNELS[args.kernel]()
    scheduler_cls = SCHEDULERS[args.algorithm]
    outcome = scheduler_cls(machine).schedule(loop)
    print(describe(loop))
    print(f"machine: {machine.describe()}")
    print()
    if outcome.is_modulo:
        schedule = outcome.schedule
        # One interactive loop: the independent full recheck is nearly
        # free and keeps this command's validation engine-independent.
        schedule.validate(full_recheck=True)
        print(render_kernel(schedule))
        print()
        stats = schedule.stats
        print(
            f"II={schedule.ii} stages={schedule.stage_count} "
            f"IPC={outcome.ipc():.3f} bus={stats.bus_transfers} "
            f"mem-comms={stats.mem_comms} spills={stats.spills} "
            f"attempts={stats.ii_attempts}"
        )
    else:
        print(
            f"modulo scheduling not profitable; list schedule of "
            f"{outcome.schedule.length} cycles/iteration, IPC={outcome.ipc():.3f}"
        )
    return 0


def _pick_suite(args: argparse.Namespace):
    suite = suite_for_tier(getattr(args, "suite", "paper"))
    return suite[: args.programs] if args.programs else suite


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .eval.export import figure_to_csv, figure_to_json
    from .eval.figures import figure2_panel, figure3_panel
    from .eval.parallel import evaluation_pool
    from .schedule.engine import EngineOptions

    suite = _pick_suite(args)
    options = None
    if args.verify:
        # Paranoid end-to-end mode: incremental-vs-reference pressure
        # cross-checks inside the engine, plus a full_recheck validation
        # of every schedule before it is reported.
        options = EngineOptions(verify_pressure=True, validate_schedules=True)
    with evaluation_pool(args.jobs, mp_context=args.mp_context) as pool:
        if args.bus_latency == 2:
            panel = figure3_panel(
                args.registers, suite=suite, jobs=args.jobs,
                chunksize=args.chunksize, pool=pool, options=options,
                validate_each=args.validate_each,
            )
        else:
            panel = figure2_panel(
                args.clusters, args.registers, suite=suite, jobs=args.jobs,
                chunksize=args.chunksize, pool=pool, options=options,
                validate_each=args.validate_each,
            )
    if args.format == "csv":
        print(figure_to_csv(panel), end="")
    elif args.format == "json":
        print(figure_to_json(panel))
    else:
        print(panel.render())
        print()
        print(
            f"GP over URACAM: {panel.gain_percent('gp', 'uracam'):+.1f}%  "
            f"GP over Fixed: {panel.gain_percent('gp', 'fixed-partition'):+.1f}%"
        )
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    make = make_benchmark if args.suite == "paper" else make_extended_benchmark
    names = [args.program] if args.program else list(PROGRAM_NAMES)
    for name in names:
        benchmark = make(name)
        print(f"{name}: ({len(benchmark.loops)} loops)")
        for loop in benchmark.loops:
            print(f"  {describe(loop)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json
    import os
    import time as _time

    from .eval.figures import table2
    from .eval.parallel import evaluation_pool, resolve_jobs

    suite = _pick_suite(args)
    machine = parse_machine(args.machine)
    jobs = resolve_jobs(args.jobs)
    cpu_count = os.cpu_count() or 1
    oversubscribed = jobs > cpu_count
    if oversubscribed:
        # The per-loop timers measure elapsed time, so more workers than
        # cores inflates every number through contention: annotate instead
        # of letting the artifact silently report a "slowdown".
        print(
            f"warning: --jobs {jobs} oversubscribes this host "
            f"({cpu_count} CPU{'s' if cpu_count != 1 else ''}); parallel "
            "wall clock measures contention, not speedup",
            file=sys.stderr,
        )
    started = _time.perf_counter()
    with evaluation_pool(jobs, mp_context=args.mp_context) as pool:
        result = table2(
            suite, [machine], jobs=jobs, chunksize=args.chunksize, pool=pool
        )
    wall_seconds = _time.perf_counter() - started
    print(result.render())
    config = result.configs[0]
    per = result.seconds[config]
    print()
    print(
        "schedule CPU seconds per benchmark "
        f"({len(suite)} benchmarks, {config}):"
    )
    for name in ("uracam", "fixed-partition", "gp"):
        print(f"  {name:16s} {per[name]:.4f}")
    print(f"suite wall clock: {wall_seconds:.2f}s (jobs={jobs})")
    if args.json:
        payload = {
            "schema": "repro-bench-cli/v2",
            "machine": config,
            "suite": args.suite,
            "benchmarks": len(suite),
            "loops": sum(len(b.loops) for b in suite),
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "oversubscribed": oversubscribed,
            "cpu_seconds_per_benchmark": dict(per),
            "wall_seconds": wall_seconds,
        }
        with open(args.json, "w") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_machines(args: argparse.Namespace) -> int:
    print("Table 1 configurations:")
    for config in table1_configurations():
        print(f"  {config.describe()}")
    print("DSP presets:")
    for name, factory in sorted(DSP_PRESETS.items()):
        print(f"  {name}: {factory().describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph-partitioning based instruction scheduling "
        "for clustered processors (MICRO-34 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sched = sub.add_parser("schedule", help="schedule one loop")
    p_sched.add_argument("--kernel", default="daxpy",
                         help=f"built-in kernel ({', '.join(sorted(KERNELS))})")
    p_sched.add_argument("--loop-file", default=None,
                         help="JSON loop file (overrides --kernel)")
    p_sched.add_argument("--machine", default="2x32",
                         help="NxR[xB[xL]] or c6x/lx/tigersharc")
    p_sched.add_argument("--algorithm", default="gp",
                         choices=sorted(SCHEDULERS))
    p_sched.set_defaults(func=_cmd_schedule)

    def add_suite_options(p) -> None:
        p.add_argument("--suite", default="paper", choices=SUITE_TIERS,
                       help="workload tier: the paper's 40 loops or the "
                       "220-loop extended tier")
        p.add_argument("--programs", type=int, default=0,
                       help="limit to the first N programs (0 = all)")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for per-loop scheduling "
                       "(1 = sequential, 0 = one per CPU)")
        p.add_argument("--chunksize", type=int, default=None,
                       help="loops batched per worker task (default: "
                       "automatic heuristic; results are identical at "
                       "any value)")
        p.add_argument("--mp-context", default=None,
                       choices=("spawn", "forkserver"),
                       help="worker start method (default: forkserver "
                       "where the platform offers it; results are "
                       "identical under either)")

    p_eval = sub.add_parser("evaluate", help="run a figure panel")
    p_eval.add_argument("--clusters", type=int, default=2, choices=(2, 4))
    p_eval.add_argument("--registers", type=int, default=32, choices=(32, 64))
    p_eval.add_argument("--bus-latency", type=int, default=1, choices=(1, 2))
    p_eval.add_argument("--verify", action="store_true",
                        help="paranoid mode: cross-check the incremental "
                        "pressure accounting at every engine commit and "
                        "re-validate every schedule with full_recheck")
    p_eval.add_argument("--validate-each", action="store_true",
                        help="re-validate every modulo schedule through "
                        "its cached sessions as it is produced (the "
                        "sweep-integrated validation cost)")
    add_suite_options(p_eval)
    p_eval.add_argument("--format", default="table",
                        choices=("table", "csv", "json"))
    p_eval.set_defaults(func=_cmd_evaluate)

    p_bench = sub.add_parser(
        "bench",
        help="time the schedulers (Table 2) on one machine preset",
    )
    p_bench.add_argument("--machine", default="4x64",
                         help="NxR[xB[xL]] or c6x/lx/tigersharc")
    add_suite_options(p_bench)
    p_bench.add_argument("--json", default=None, metavar="PATH",
                         help="also write the timings as JSON (CI artifact)")
    p_bench.set_defaults(func=_cmd_bench)

    p_work = sub.add_parser("workloads", help="describe the synthetic suite")
    p_work.add_argument("--program", default=None, choices=PROGRAM_NAMES)
    p_work.add_argument("--suite", default="paper", choices=SUITE_TIERS)
    p_work.set_defaults(func=_cmd_workloads)

    p_mach = sub.add_parser("machines", help="list machine configurations")
    p_mach.set_defaults(func=_cmd_machines)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
