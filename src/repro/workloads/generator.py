"""Parameterized synthetic loop generation.

The paper's workloads are the innermost loops of SPECfp95, extracted by the
ICTINEO compiler.  Without that front-end (see DESIGN.md §2) we generate
loop DDGs whose *shape* is controlled by the parameters real numeric loops
differ in — operation mix, dependence fan-out, recurrence structure,
dependence-chain depth — so the schedulers face the same pressures
(recurrence-limited II, bus traffic, memory-port contention, register
pressure) as on compiler-extracted loops.

Generation is fully deterministic for a given :class:`LoopShape` and seed.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import List, Tuple

from ..ir.builder import LoopBuilder
from ..ir.loop import Loop
from ..ir.opcodes import (
    ADD,
    FADD,
    FDIV,
    FMUL,
    FSUB,
    MUL,
    SUB,
    Opcode,
)

#: Compute opcodes drawn for FP work, weighted towards adds/multiplies.
_FP_POOL: Tuple[Opcode, ...] = (FADD, FADD, FMUL, FMUL, FSUB, FDIV)
#: Compute opcodes drawn for integer work (addressing, induction updates).
_INT_POOL: Tuple[Opcode, ...] = (ADD, ADD, SUB, MUL)


@dataclass(frozen=True)
class LoopShape:
    """Structural parameters of a generated loop.

    Attributes:
        num_operations: Total operation count of the body.
        mem_ratio: Fraction of operations that access memory.
        store_fraction: Among memory ops, the fraction that are stores.
        fp_ratio: Among compute ops, the fraction that are floating point.
        avg_operands: Mean number of operands per compute operation
            (between 1 and 2).
        depth_bias: 0..1; higher values chain operations into longer
            dependence paths (deep graphs), lower values produce wide,
            parallel graphs.
        recurrences: Number of loop-carried dependence cycles to create.
        recurrence_distance: Iteration distance of those cycles.
        trip_count: Profiled iteration count of the loop.
    """

    num_operations: int
    mem_ratio: float = 0.3
    store_fraction: float = 0.3
    fp_ratio: float = 0.8
    avg_operands: float = 1.6
    depth_bias: float = 0.5
    recurrences: int = 0
    recurrence_distance: int = 1
    trip_count: int = 100

    def __post_init__(self) -> None:
        if self.num_operations < 2:
            raise ValueError("a loop needs at least two operations")
        for label, value in (
            ("mem_ratio", self.mem_ratio),
            ("store_fraction", self.store_fraction),
            ("fp_ratio", self.fp_ratio),
            ("depth_bias", self.depth_bias),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")

    def scaled(self, factor: float, **overrides) -> "LoopShape":
        """A derived shape with the body scaled by ``factor``.

        Keeps every other parameter unless overridden; ratio-type
        overrides are clamped to [0, 1] so programmatic jitter (the
        extended suite tier) cannot produce an invalid shape.
        """
        fields = dataclasses.asdict(self)
        fields["num_operations"] = max(4, round(self.num_operations * factor))
        fields.update(overrides)
        for ratio in ("mem_ratio", "store_fraction", "fp_ratio", "depth_bias"):
            fields[ratio] = min(1.0, max(0.0, fields[ratio]))
        return LoopShape(**fields)


def _stable_hash(text: str) -> int:
    """Deterministic string hash (built-in ``hash`` varies per process)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % 1_000_000_007
    return value


def generate_loop(name: str, shape: LoopShape, seed: int) -> Loop:
    """Generate one loop with the requested shape, deterministically."""
    rng = random.Random((seed * 1_000_003) ^ _stable_hash(name))
    builder = LoopBuilder(name, trip_count=shape.trip_count)

    n_mem = max(1, round(shape.num_operations * shape.mem_ratio))
    n_stores = min(n_mem - 1, max(0, round(n_mem * shape.store_fraction)))
    n_loads = max(1, n_mem - n_stores)
    n_compute = max(1, shape.num_operations - n_loads - n_stores)

    producers = [builder.load(f"ld{i}") for i in range(n_loads)]

    compute_nodes = []
    for i in range(n_compute):
        pool = _FP_POOL if rng.random() < shape.fp_ratio else _INT_POOL
        opcode = rng.choice(pool)
        operand_count = 1 if rng.random() > (shape.avg_operands - 1.0) else 2
        operand_count = min(operand_count, len(producers))
        operands = []
        for _ in range(operand_count):
            operands.append(_pick_producer(rng, producers, shape.depth_bias))
        node = builder.op(opcode, *operands, name=f"c{i}")
        producers.append(node)
        compute_nodes.append(node)

    # Stores consume the most recent compute results (loop outputs).
    sinks = compute_nodes[-n_stores:] if n_stores else []
    for i, value in enumerate(sinks):
        builder.store(value, name=f"st{i}")

    _add_recurrences(builder, rng, compute_nodes, shape)

    return builder.build()


def _pick_producer(rng: random.Random, producers: List, depth_bias: float):
    """Pick an operand; depth bias skews the draw towards recent producers."""
    n = len(producers)
    if n == 1:
        return producers[0]
    skew = 1.0 + 4.0 * depth_bias
    index = int(n * (rng.random() ** (1.0 / skew)))
    return producers[min(index, n - 1)]


def _add_recurrences(
    builder: LoopBuilder,
    rng: random.Random,
    compute_nodes: List,
    shape: LoopShape,
) -> None:
    """Close loop-carried cycles over existing compute operations.

    Two classic patterns: a *reduction* (an operation consuming its own
    previous-iteration result, RecMII = latency / distance) and a two-node
    recurrence (a back edge to a direct operand producer, RecMII =
    (lat(u) + lat(v)) / distance).  Both are guaranteed cycles, unlike
    random back edges which may not close a path.
    """
    if not compute_nodes or shape.recurrences <= 0:
        return
    chosen = set()
    for _ in range(shape.recurrences):
        node = rng.choice(compute_nodes)
        if node.uid in chosen:
            continue
        chosen.add(node.uid)
        predecessors = [
            builder.ddg.operation(uid)
            for uid in builder.ddg.predecessors(node.uid)
            if uid != node.uid and not builder.ddg.operation(uid).is_store
        ]
        if predecessors and rng.random() < 0.5:
            target = rng.choice(predecessors)
            builder.recurrence(node, target, distance=shape.recurrence_distance)
        else:
            builder.recurrence(node, node, distance=shape.recurrence_distance)


def generate_suite(
    prefix: str, shapes: List[LoopShape], seed: int
) -> List[Loop]:
    """Generate one loop per shape with per-loop derived seeds."""
    return [
        generate_loop(f"{prefix}_loop{i}", shape, seed + 7919 * i)
        for i, shape in enumerate(shapes)
    ]
