"""Workloads: synthetic loop generators, classic kernels, the SPEC-like suite."""

from .generator import LoopShape, generate_loop, generate_suite
from .kernels import KERNELS, all_kernels
from .spec import (
    PROGRAM_NAMES,
    SUITE_SEED,
    SUITE_TIERS,
    Benchmark,
    extended_suite,
    make_benchmark,
    make_extended_benchmark,
    spec_suite,
    suite_for_tier,
)

__all__ = [
    "Benchmark",
    "KERNELS",
    "LoopShape",
    "PROGRAM_NAMES",
    "SUITE_SEED",
    "SUITE_TIERS",
    "all_kernels",
    "extended_suite",
    "generate_loop",
    "generate_suite",
    "make_benchmark",
    "make_extended_benchmark",
    "spec_suite",
    "suite_for_tier",
]
