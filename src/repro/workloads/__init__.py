"""Workloads: synthetic loop generators, classic kernels, the SPEC-like suite."""

from .generator import LoopShape, generate_loop, generate_suite
from .kernels import KERNELS, all_kernels
from .spec import PROGRAM_NAMES, SUITE_SEED, Benchmark, make_benchmark, spec_suite

__all__ = [
    "Benchmark",
    "KERNELS",
    "LoopShape",
    "PROGRAM_NAMES",
    "SUITE_SEED",
    "all_kernels",
    "generate_loop",
    "generate_suite",
    "make_benchmark",
    "spec_suite",
]
