"""Hand-written classic numerical loop kernels.

These small, recognizable loops are used by the examples and as precise
fixtures in the tests: their MII, recurrence structure and communication
patterns are known by construction.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..ir.builder import LoopBuilder
from ..ir.loop import Loop


def daxpy(trip_count: int = 1000) -> Loop:
    """``y[i] = a * x[i] + y[i]`` — no recurrence, memory bound."""
    b = LoopBuilder("daxpy", trip_count)
    x = b.load("x[i]")
    y = b.load("y[i]")
    ax = b.op("fmul", x, name="a*x")
    s = b.op("fadd", ax, y, name="a*x+y")
    b.store(s, "y[i]=")
    return b.build()


def dot_product(trip_count: int = 1000) -> Loop:
    """``s += x[i] * y[i]`` — the classic reduction recurrence."""
    b = LoopBuilder("dot", trip_count)
    x = b.load("x[i]")
    y = b.load("y[i]")
    p = b.op("fmul", x, y, name="x*y")
    s = b.op("fadd", p, name="s+=")
    b.recurrence(s, s, distance=1)  # RecMII = fadd latency
    return b.build()


def stencil5(trip_count: int = 500) -> Loop:
    """1-D five-point stencil — wide, memory heavy, no recurrence."""
    b = LoopBuilder("stencil5", trip_count)
    points = [b.load(f"a[i{o:+d}]") for o in range(-2, 3)]
    w = [b.op("fmul", p, name=f"w{i}") for i, p in enumerate(points)]
    s1 = b.op("fadd", w[0], w[1])
    s2 = b.op("fadd", w[2], w[3])
    s3 = b.op("fadd", s1, s2)
    s4 = b.op("fadd", s3, w[4], name="sum")
    b.store(s4, "out[i]")
    return b.build()


def complex_multiply(trip_count: int = 800) -> Loop:
    """Complex vector multiply — two parallel chains, good 2-way split."""
    b = LoopBuilder("cmul", trip_count)
    ar, ai = b.load("a.re"), b.load("a.im")
    br, bi = b.load("b.re"), b.load("b.im")
    rr = b.op("fsub", b.op("fmul", ar, br), b.op("fmul", ai, bi), name="re")
    ri = b.op("fadd", b.op("fmul", ar, bi), b.op("fmul", ai, br), name="im")
    b.store(rr, "c.re")
    b.store(ri, "c.im")
    return b.build()


def horner(trip_count: int = 600, degree: int = 6) -> Loop:
    """Horner polynomial evaluation — one long serial chain per iteration."""
    b = LoopBuilder("horner", trip_count)
    x = b.load("x[i]")
    acc = b.op("fmul", x, name="c_n*x")
    for k in range(degree - 1):
        acc = b.op("fadd", acc, name=f"+c{k}")
        acc = b.op("fmul", acc, x, name=f"*x{k}")
    b.store(acc, "p[i]")
    return b.build()


def fir_filter(trip_count: int = 700, taps: int = 4) -> Loop:
    """FIR filter — loads per tap feeding a balanced reduction tree."""
    b = LoopBuilder("fir", trip_count)
    partials = [
        b.op("fmul", b.load(f"x[i-{t}]"), name=f"tap{t}") for t in range(taps)
    ]
    while len(partials) > 1:
        partials = [
            b.op("fadd", partials[k], partials[k + 1])
            if k + 1 < len(partials)
            else partials[k]
            for k in range(0, len(partials), 2)
        ]
    b.store(partials[0], "y[i]")
    return b.build()


def recurrence_chain(trip_count: int = 400) -> Loop:
    """First-order linear recurrence ``s[i] = a*s[i-1] + b[i]`` — RecMII 6."""
    b = LoopBuilder("linrec", trip_count)
    bv = b.load("b[i]")
    prod = b.op("fmul", name="a*s")
    s = b.op("fadd", prod, bv, name="s[i]")
    b.recurrence(s, prod, distance=1)
    b.store(s, "s[i]=")
    return b.build()


def livermore_hydro(trip_count: int = 400) -> Loop:
    """Livermore kernel 1 (hydro fragment): ``x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])``."""
    b = LoopBuilder("ll1_hydro", trip_count)
    z10 = b.load("z[k+10]")
    z11 = b.load("z[k+11]")
    y = b.load("y[k]")
    rz = b.op("fmul", z10, name="r*z10")
    tz = b.op("fmul", z11, name="t*z11")
    inner = b.op("fadd", rz, tz)
    prod = b.op("fmul", y, inner)
    x = b.op("fadd", prod, name="q+")
    b.store(x, "x[k]")
    return b.build()


def tridiagonal(trip_count: int = 300) -> Loop:
    """Livermore kernel 5 (tri-diagonal elimination) — tight recurrence."""
    b = LoopBuilder("tridiag", trip_count)
    y = b.load("y[i]")
    z = b.load("z[i]")
    prev = b.op("fmul", y, name="y*x[i-1]")
    x = b.op("fsub", z, prev, name="x[i]")
    b.recurrence(x, prev, distance=1)
    b.store(x, "x[i]=")
    return b.build()


#: All kernels by name (used by examples and parametrized tests).
KERNELS: Dict[str, Callable[[], Loop]] = {
    "daxpy": daxpy,
    "dot": dot_product,
    "stencil5": stencil5,
    "cmul": complex_multiply,
    "horner": horner,
    "fir": fir_filter,
    "linrec": recurrence_chain,
    "ll1_hydro": livermore_hydro,
    "tridiag": tridiagonal,
}


def all_kernels() -> List[Loop]:
    """Instantiate every kernel with its default trip count."""
    return [factory() for factory in KERNELS.values()]
