"""The SPECfp95-like evaluation suite.

The paper evaluates on the innermost loops of the ten SPECfp95 programs
(tomcatv, swim, su2cor, hydro2d, mgrid, applu, turb3d, apsi, fpppp, wave5),
which we cannot extract without the ICTINEO front-end.  Each program is
replaced by a *seeded synthetic loop suite* whose shape parameters reflect
the well-documented character of the original program's kernels — e.g.
swim's wide memory-bound shallow-water stencils, fpppp's huge register-
hungry straight-line blocks, su2cor/apsi's recurrence-carrying solvers.
See DESIGN.md §2 for why this substitution preserves the evaluation's
shape.

Everything is deterministic: the suite depends only on ``SUITE_SEED``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from .generator import LoopShape, _stable_hash, generate_loop

#: Global seed of the synthetic suite; change to resample every program.
SUITE_SEED = 20010101

#: Selectable suite sizes: the paper's 10-program/40-loop evaluation and
#: the production-scale tier (hundreds of loops, bodies beyond 200 ops).
SUITE_TIERS = ("paper", "extended")


@dataclass(frozen=True)
class Benchmark:
    """One synthetic program: a named set of innermost loops."""

    name: str
    loops: tuple

    def total_dynamic_operations(self) -> int:
        return sum(loop.total_dynamic_operations() for loop in self.loops)


def _shapes_for(name: str) -> List[LoopShape]:
    """Loop shape parameters characteristic of each SPECfp95 program."""
    shapes: Dict[str, List[LoopShape]] = {
        # Vectorized mesh generation: wide vector arithmetic, few stores.
        "tomcatv": [
            LoopShape(44, mem_ratio=0.30, depth_bias=0.40, trip_count=250),
            LoopShape(52, mem_ratio=0.25, depth_bias=0.35, trip_count=250),
            LoopShape(38, mem_ratio=0.30, depth_bias=0.45, trip_count=200),
            LoopShape(46, mem_ratio=0.25, depth_bias=0.40, trip_count=150),
        ],
        # Shallow-water stencils: wide, memory heavy, highly parallel.
        "swim": [
            LoopShape(41, mem_ratio=0.45, depth_bias=0.15, trip_count=300),
            LoopShape(49, mem_ratio=0.50, depth_bias=0.15, trip_count=300),
            LoopShape(35, mem_ratio=0.45, depth_bias=0.20, trip_count=250),
            LoopShape(55, mem_ratio=0.40, depth_bias=0.20, trip_count=200),
        ],
        # Monte-Carlo quark propagator: wide with a few recurrences.
        "su2cor": [
            LoopShape(44, mem_ratio=0.35, depth_bias=0.30, recurrences=1, trip_count=180),
            LoopShape(35, mem_ratio=0.30, depth_bias=0.30, recurrences=1, trip_count=220),
            LoopShape(49, mem_ratio=0.35, depth_bias=0.25, trip_count=150),
            LoopShape(32, mem_ratio=0.35, depth_bias=0.35, recurrences=1, trip_count=260),
        ],
        # Navier-Stokes hydrodynamics: deeper chains, higher register
        # pressure than the rest of the suite.
        "hydro2d": [
            LoopShape(46, mem_ratio=0.25, depth_bias=0.60, trip_count=220),
            LoopShape(55, mem_ratio=0.20, depth_bias=0.60, trip_count=180),
            LoopShape(41, mem_ratio=0.25, depth_bias=0.65, recurrences=1, trip_count=240),
            LoopShape(49, mem_ratio=0.20, depth_bias=0.55, trip_count=160),
        ],
        # Multigrid Poisson solver: memory bound, long lifetimes.
        "mgrid": [
            LoopShape(44, mem_ratio=0.50, depth_bias=0.40, trip_count=280),
            LoopShape(51, mem_ratio=0.45, depth_bias=0.40, trip_count=240),
            LoopShape(38, mem_ratio=0.50, depth_bias=0.45, trip_count=300),
            LoopShape(46, mem_ratio=0.45, depth_bias=0.40, trip_count=200),
        ],
        # Parabolic/elliptic PDE solver: mixed width, mild recurrences.
        "applu": [
            LoopShape(41, mem_ratio=0.35, depth_bias=0.30, recurrences=1, trip_count=200),
            LoopShape(46, mem_ratio=0.30, depth_bias=0.35, trip_count=180),
            LoopShape(35, mem_ratio=0.35, depth_bias=0.30, trip_count=240),
            LoopShape(52, mem_ratio=0.30, depth_bias=0.30, trip_count=140),
        ],
        # Isotropic turbulence (FFT butterflies): wide with high fan-out.
        "turb3d": [
            LoopShape(42, mem_ratio=0.30, depth_bias=0.15, avg_operands=1.9, trip_count=220),
            LoopShape(48, mem_ratio=0.30, depth_bias=0.20, avg_operands=1.9, trip_count=200),
            LoopShape(36, mem_ratio=0.35, depth_bias=0.15, trip_count=260),
            LoopShape(54, mem_ratio=0.25, depth_bias=0.20, avg_operands=1.8, trip_count=160),
        ],
        # Mesoscale weather model: mixed, recurrence-carrying solvers.
        "apsi": [
            LoopShape(39, mem_ratio=0.35, depth_bias=0.35, recurrences=1, trip_count=210),
            LoopShape(45, mem_ratio=0.30, depth_bias=0.30, recurrences=2, trip_count=170),
            LoopShape(33, mem_ratio=0.35, depth_bias=0.40, trip_count=250),
            LoopShape(51, mem_ratio=0.30, depth_bias=0.30, recurrences=1, trip_count=150),
        ],
        # Gaussian quantum chemistry: huge compute blocks, few memory ops,
        # extreme register pressure.
        "fpppp": [
            LoopShape(58, mem_ratio=0.12, depth_bias=0.45, trip_count=120),
            LoopShape(64, mem_ratio=0.10, depth_bias=0.40, trip_count=100),
            LoopShape(52, mem_ratio=0.15, depth_bias=0.45, trip_count=140),
            LoopShape(61, mem_ratio=0.10, depth_bias=0.40, trip_count=110),
        ],
        # Plasma particle-in-cell: gather/scatter memory traffic.
        "wave5": [
            LoopShape(38, mem_ratio=0.50, depth_bias=0.25, trip_count=260),
            LoopShape(45, mem_ratio=0.45, depth_bias=0.20, trip_count=220),
            LoopShape(32, mem_ratio=0.55, depth_bias=0.25, trip_count=300),
            LoopShape(49, mem_ratio=0.45, depth_bias=0.20, trip_count=180),
        ],
    }
    return shapes[name]


#: SPECfp95 program names, in the paper's customary order.
PROGRAM_NAMES = (
    "tomcatv",
    "swim",
    "su2cor",
    "hydro2d",
    "mgrid",
    "applu",
    "turb3d",
    "apsi",
    "fpppp",
    "wave5",
)


def make_benchmark(name: str, seed: int = SUITE_SEED) -> Benchmark:
    """Build one program's synthetic loop suite."""
    shapes = _shapes_for(name)
    loops = tuple(
        generate_loop(f"{name}_loop{i}", shape, seed + 7919 * i)
        for i, shape in enumerate(shapes)
    )
    return Benchmark(name=name, loops=loops)


def spec_suite(seed: int = SUITE_SEED) -> List[Benchmark]:
    """The full ten-program SPECfp95-like suite."""
    return [make_benchmark(name, seed) for name in PROGRAM_NAMES]


# ----------------------------------------------------------------------
# The extended (production-scale) tier
# ----------------------------------------------------------------------

#: Body-size multipliers applied to each paper shape; the largest takes
#: every program past 200 operations (fpppp up to ~280).
_EXTENDED_SCALES = (1.0, 1.8, 3.2, 4.4)

#: Extra memory-traffic / recurrence profiles per program, exercising the
#: corners the paper shapes average over.
_EXTENDED_PROFILES = 6


def _extended_shapes_for(name: str, seed: int) -> List[LoopShape]:
    """The extended tier's 22 shapes for one program.

    Four size scalings of each paper shape (16) plus six dedicated
    profiles: streaming (memory-bound), compute-bound large bodies and
    deep recurrences at distance 2.  All jitter is drawn from an RNG
    seeded by ``(seed, name)``, so the tier is as deterministic as the
    paper tier.
    """
    rng = random.Random((seed * 2_000_003) ^ _stable_hash(name))
    base_shapes = _shapes_for(name)
    shapes: List[LoopShape] = []
    for base in base_shapes:
        for scale in _EXTENDED_SCALES:
            shapes.append(
                base.scaled(
                    scale,
                    mem_ratio=base.mem_ratio + rng.uniform(-0.08, 0.08),
                    depth_bias=base.depth_bias + rng.uniform(-0.10, 0.10),
                    recurrences=base.recurrences + (1 if rng.random() < 0.25 else 0),
                    trip_count=rng.randrange(80, 401, 10),
                )
            )
    anchor = base_shapes[0]
    for i in range(_EXTENDED_PROFILES):
        kind = i % 3
        if kind == 0:  # streaming: wide, memory-bound
            shapes.append(
                anchor.scaled(
                    1.5 + rng.uniform(0.0, 1.0),
                    mem_ratio=0.55,
                    depth_bias=0.15,
                    recurrences=0,
                    trip_count=rng.randrange(200, 401, 10),
                )
            )
        elif kind == 1:  # compute-bound large body: fpppp-like pressure
            shapes.append(
                anchor.scaled(
                    3.6 + rng.uniform(0.0, 1.0),
                    mem_ratio=0.10,
                    depth_bias=0.45,
                    recurrences=0,
                    trip_count=rng.randrange(80, 201, 10),
                )
            )
        else:  # recurrence-heavy: deep carried chains at distance 2
            shapes.append(
                anchor.scaled(
                    1.0 + rng.uniform(0.0, 1.2),
                    depth_bias=min(1.0, anchor.depth_bias + 0.15),
                    recurrences=3 + (i // 3),
                    recurrence_distance=2,
                    trip_count=rng.randrange(100, 301, 10),
                )
            )
    return shapes


def make_extended_benchmark(name: str, seed: int = SUITE_SEED) -> Benchmark:
    """Build one program's extended-tier loop suite."""
    shapes = _extended_shapes_for(name, seed)
    loops = tuple(
        generate_loop(f"{name}_ext{i}", shape, seed + 104_729 * (i + 1))
        for i, shape in enumerate(shapes)
    )
    return Benchmark(name=name, loops=loops)


def extended_suite(seed: int = SUITE_SEED) -> List[Benchmark]:
    """The production-scale tier: 10 programs x 22 loops (220 loops),
    body sizes from ~32 to ~280 operations, mixed recurrence depths and
    memory-traffic profiles.  Fully deterministic for a given seed."""
    return [make_extended_benchmark(name, seed) for name in PROGRAM_NAMES]


def suite_for_tier(tier: str, seed: int = SUITE_SEED) -> List[Benchmark]:
    """Resolve a named suite tier (``paper`` or ``extended``)."""
    if tier == "paper":
        return spec_suite(seed)
    if tier == "extended":
        return extended_suite(seed)
    raise KeyError(f"unknown suite tier {tier!r}; choose from {SUITE_TIERS}")
