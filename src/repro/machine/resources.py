"""Resource kinds of the clustered VLIW machine model.

Per-cluster resources are functional units of each
:class:`~repro.ir.opcodes.OpClass` (the memory units double as memory ports,
as in the paper's configurations) and a register file.  The inter-cluster
interconnect is one or more buses shared by all clusters; a bus transfer of
latency ``L`` occupies its bus for ``L`` consecutive cycles because the paper
assumes a *non-pipelined* bus.
"""

from __future__ import annotations

import enum

from ..ir.opcodes import OpClass


class ResourceKind(enum.Enum):
    """Every schedulable resource class in the machine."""

    INT_UNIT = "int_unit"
    FP_UNIT = "fp_unit"
    MEM_PORT = "mem_port"
    BUS = "bus"
    REGISTER = "register"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Functional-unit resource used by each operation class.
UNIT_FOR_CLASS = {
    OpClass.INT: ResourceKind.INT_UNIT,
    OpClass.FP: ResourceKind.FP_UNIT,
    OpClass.MEM: ResourceKind.MEM_PORT,
}

#: The per-cluster functional-unit kinds, in a stable order.
FU_KINDS = (ResourceKind.INT_UNIT, ResourceKind.FP_UNIT, ResourceKind.MEM_PORT)


def unit_for(op_class: OpClass) -> ResourceKind:
    """The functional-unit resource an operation class executes on."""
    return UNIT_FOR_CLASS[op_class]
