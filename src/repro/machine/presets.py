"""The paper's machine configurations (Table 1).

All configurations are 12-issue with the same total resources — four
functional units of each class (integer, floating point, memory) — divided
evenly among the clusters:

* **unified**: 1 cluster, 4 FUs of each class, a single register file.
* **2-cluster**: 2 FUs of each class and half the registers per cluster.
* **4-cluster**: 1 FU of each class and a quarter of the registers per
  cluster.

The evaluation varies the total register count (32 or 64), the bus latency
(1 or 2 cycles) and, for one ablation, the number of buses (1 or 2).  The
memory hierarchy is shared and perfect (every access hits), which the
scheduler models by using fixed load/store latencies.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError
from .config import MachineConfig, homogeneous_machine

#: Total functional units of each class across the machine (Table 1).
TOTAL_UNITS_PER_CLASS = 4

#: Register-file totals evaluated in the paper.
REGISTER_TOTALS = (32, 64)


def unified(total_registers: int = 64) -> MachineConfig:
    """The unified (1-cluster) baseline configuration."""
    return homogeneous_machine(
        name=f"unified-{total_registers}r",
        num_clusters=1,
        int_units=TOTAL_UNITS_PER_CLASS,
        fp_units=TOTAL_UNITS_PER_CLASS,
        mem_units=TOTAL_UNITS_PER_CLASS,
        registers_per_cluster=total_registers,
    )


def clustered(
    num_clusters: int,
    total_registers: int = 64,
    num_buses: int = 1,
    bus_latency: int = 1,
) -> MachineConfig:
    """A Table 1 clustered configuration (2 or 4 clusters).

    Total resources stay constant: each cluster gets
    ``4 / num_clusters`` units of every class and
    ``total_registers / num_clusters`` registers.

    Raises:
        ConfigError: if the resources do not divide evenly.
    """
    if TOTAL_UNITS_PER_CLASS % num_clusters:
        raise ConfigError(
            f"{num_clusters} clusters do not evenly divide "
            f"{TOTAL_UNITS_PER_CLASS} units per class"
        )
    if total_registers % num_clusters:
        raise ConfigError(
            f"{num_clusters} clusters do not evenly divide {total_registers} registers"
        )
    per = TOTAL_UNITS_PER_CLASS // num_clusters
    return homogeneous_machine(
        name=(
            f"{num_clusters}-cluster-{total_registers}r-"
            f"{num_buses}bus-lat{bus_latency}"
        ),
        num_clusters=num_clusters,
        int_units=per,
        fp_units=per,
        mem_units=per,
        registers_per_cluster=total_registers // num_clusters,
        num_buses=num_buses,
        bus_latency=bus_latency,
    )


def two_cluster(
    total_registers: int = 64, num_buses: int = 1, bus_latency: int = 1
) -> MachineConfig:
    """The 2-cluster configuration of Table 1."""
    return clustered(2, total_registers, num_buses, bus_latency)


def four_cluster(
    total_registers: int = 64, num_buses: int = 1, bus_latency: int = 1
) -> MachineConfig:
    """The 4-cluster configuration of Table 1."""
    return clustered(4, total_registers, num_buses, bus_latency)


def table1_configurations() -> List[MachineConfig]:
    """Every configuration evaluated in the paper's main figures."""
    configs: List[MachineConfig] = []
    for regs in REGISTER_TOTALS:
        configs.append(unified(regs))
    for regs in REGISTER_TOTALS:
        configs.append(two_cluster(regs, bus_latency=1))
        configs.append(four_cluster(regs, bus_latency=1))
    for regs in REGISTER_TOTALS:
        configs.append(four_cluster(regs, bus_latency=2))
    return configs
