"""Clustered VLIW machine model."""

from .config import ClusterConfig, MachineConfig, homogeneous_machine
from .dsp import DSP_PRESETS, lx_like, tigersharc_like, tms320c6x_like
from .presets import (
    REGISTER_TOTALS,
    TOTAL_UNITS_PER_CLASS,
    clustered,
    four_cluster,
    table1_configurations,
    two_cluster,
    unified,
)
from .resources import FU_KINDS, ResourceKind, unit_for
from .spec import parse_machine_spec

__all__ = [
    "DSP_PRESETS",
    "FU_KINDS",
    "ClusterConfig",
    "MachineConfig",
    "REGISTER_TOTALS",
    "ResourceKind",
    "TOTAL_UNITS_PER_CLASS",
    "clustered",
    "four_cluster",
    "homogeneous_machine",
    "lx_like",
    "parse_machine_spec",
    "tigersharc_like",
    "tms320c6x_like",
    "table1_configurations",
    "two_cluster",
    "unified",
    "unit_for",
]
