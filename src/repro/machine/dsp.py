"""Machine presets modelled on the clustered DSPs the paper motivates.

The paper's introduction cites the clustered VLIW DSPs of its era — the
Texas Instruments TMS320C6x, Analog Devices TigerSharc, Equator MAP1000,
HP/ST Lx and BOPS ManArray.  These presets capture their *cluster shapes*
(not their exact ISAs): the C6x's two 4-issue clusters with a single
cross-path, the Lx's four symmetric lanes, and a TigerSharc-like pair of
wide compute blocks.  They are useful for exercising the schedulers on
asymmetric or narrower machines than the paper's 12-issue research
configurations.
"""

from __future__ import annotations

from .config import ClusterConfig, MachineConfig


def tms320c6x_like(registers_per_cluster: int = 16) -> MachineConfig:
    """Two 4-issue clusters (A/B register files), one 1-cycle cross path.

    The C6x datapath has two clusters of four units; we model each as
    2 INT + 1 FP + 1 MEM with a single inter-cluster path.
    """
    cluster = ClusterConfig(
        int_units=2, fp_units=1, mem_units=1, registers=registers_per_cluster
    )
    return MachineConfig(
        name=f"c6x-like-{registers_per_cluster}r",
        clusters=(cluster, cluster),
        num_buses=1,
        bus_latency=1,
    )


def lx_like(registers_per_cluster: int = 16) -> MachineConfig:
    """Four symmetric 4-issue lanes with a shared 2-cycle interconnect."""
    cluster = ClusterConfig(
        int_units=2, fp_units=1, mem_units=1, registers=registers_per_cluster
    )
    return MachineConfig(
        name=f"lx-like-{registers_per_cluster}r",
        clusters=(cluster,) * 4,
        num_buses=1,
        bus_latency=2,
    )


def tigersharc_like(registers_per_cluster: int = 32) -> MachineConfig:
    """Two wide compute blocks with dual inter-block buses."""
    cluster = ClusterConfig(
        int_units=2, fp_units=2, mem_units=2, registers=registers_per_cluster
    )
    return MachineConfig(
        name=f"tigersharc-like-{registers_per_cluster}r",
        clusters=(cluster, cluster),
        num_buses=2,
        bus_latency=1,
    )


#: All DSP-flavoured presets by name.
DSP_PRESETS = {
    "c6x": tms320c6x_like,
    "lx": lx_like,
    "tigersharc": tigersharc_like,
}
