"""Machine configuration for clustered VLIW processors.

A :class:`MachineConfig` describes the whole processor: a list of identical
or heterogeneous :class:`ClusterConfig` entries, plus the inter-cluster
interconnect (number of buses and their latency).  The paper's machines
(Table 1) are homogeneous 12-issue processors whose resources are divided
evenly among clusters; :mod:`repro.machine.presets` builds those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigError
from ..ir.opcodes import OpClass
from .resources import FU_KINDS, ResourceKind, unit_for


@dataclass(frozen=True)
class ClusterConfig:
    """Resources of a single cluster.

    Attributes:
        int_units: Integer functional units.
        fp_units: Floating-point functional units.
        mem_units: Memory units (each is one memory port).
        registers: Size of the cluster's register file.
    """

    int_units: int
    fp_units: int
    mem_units: int
    registers: int

    def __post_init__(self) -> None:
        for label, value in (
            ("int_units", self.int_units),
            ("fp_units", self.fp_units),
            ("mem_units", self.mem_units),
        ):
            if value < 0:
                raise ConfigError(f"{label} must be >= 0, got {value}")
        if self.registers < 1:
            raise ConfigError(f"registers must be >= 1, got {self.registers}")

    def units_of(self, kind: ResourceKind) -> int:
        """Number of functional units of the given kind in this cluster."""
        return {
            ResourceKind.INT_UNIT: self.int_units,
            ResourceKind.FP_UNIT: self.fp_units,
            ResourceKind.MEM_PORT: self.mem_units,
        }[kind]

    def units_for_class(self, op_class: OpClass) -> int:
        """Functional units available for an operation class."""
        return self.units_of(unit_for(op_class))

    @property
    def issue_width(self) -> int:
        """Operations this cluster can issue per cycle."""
        return self.int_units + self.fp_units + self.mem_units


@dataclass(frozen=True)
class MachineConfig:
    """A complete clustered VLIW machine.

    Attributes:
        name: Human-readable configuration name (e.g. ``"2-cluster"``).
        clusters: Per-cluster resources.
        num_buses: Inter-cluster buses (irrelevant for a single cluster).
        bus_latency: Cycles for one value transfer; the bus is non-pipelined,
            so a transfer occupies its bus for ``bus_latency`` cycles.
    """

    name: str
    clusters: Tuple[ClusterConfig, ...]
    num_buses: int = 1
    bus_latency: int = 1

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ConfigError("a machine needs at least one cluster")
        if self.num_clusters > 1 and self.num_buses < 1:
            raise ConfigError("a clustered machine needs at least one bus")
        if self.bus_latency < 1:
            raise ConfigError("bus latency must be >= 1")

    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def is_clustered(self) -> bool:
        return self.num_clusters > 1

    @property
    def issue_width(self) -> int:
        """Total operations issuable per cycle across all clusters."""
        return sum(c.issue_width for c in self.clusters)

    @property
    def total_registers(self) -> int:
        return sum(c.registers for c in self.clusters)

    def cluster(self, index: int) -> ClusterConfig:
        """The cluster at ``index``; raises ConfigError if out of range."""
        if not 0 <= index < self.num_clusters:
            raise ConfigError(
                f"cluster index {index} out of range for {self.name!r} "
                f"({self.num_clusters} clusters)"
            )
        return self.clusters[index]

    def total_units_for_class(self, op_class: OpClass) -> int:
        """Machine-wide functional units for an operation class."""
        return sum(c.units_for_class(op_class) for c in self.clusters)

    def units_table(self) -> Dict[ResourceKind, Tuple[int, ...]]:
        """Per-kind tuple of unit counts, indexed by cluster."""
        return {
            kind: tuple(c.units_of(kind) for c in self.clusters)
            for kind in FU_KINDS
        }

    def describe(self) -> str:
        """One-line summary, e.g. for the Table 1 report."""
        c0 = self.clusters[0]
        homo = all(c == c0 for c in self.clusters)
        cluster_desc = (
            f"{self.num_clusters} x (INT={c0.int_units}, FP={c0.fp_units}, "
            f"MEM={c0.mem_units}, regs={c0.registers})"
            if homo
            else f"{self.num_clusters} heterogeneous clusters"
        )
        bus_desc = (
            "no inter-cluster bus"
            if not self.is_clustered
            else f"{self.num_buses} bus(es), latency {self.bus_latency}"
        )
        return f"{self.name}: {cluster_desc}; {bus_desc}"


def homogeneous_machine(
    name: str,
    num_clusters: int,
    int_units: int,
    fp_units: int,
    mem_units: int,
    registers_per_cluster: int,
    num_buses: int = 1,
    bus_latency: int = 1,
) -> MachineConfig:
    """Build a machine whose clusters are all identical."""
    if num_clusters < 1:
        raise ConfigError("num_clusters must be >= 1")
    cluster = ClusterConfig(
        int_units=int_units,
        fp_units=fp_units,
        mem_units=mem_units,
        registers=registers_per_cluster,
    )
    return MachineConfig(
        name=name,
        clusters=tuple([cluster] * num_clusters),
        num_buses=num_buses,
        bus_latency=bus_latency,
    )
