"""The canonical machine-spec parser.

One textual convention names every machine the tools accept, shared by
the CLI, the :class:`~repro.service.registry.MachineRegistry` and the
tests (it used to live, duplicated, in ``repro.cli``):

* ``NxR[xB[xL]]`` — ``N`` clusters sharing ``R`` total registers, with
  an optional bus count ``B`` (default 1) and bus latency ``L`` (default
  1).  ``2x32`` is the paper's 2-cluster/32-register machine;
  ``4x64x2x2`` adds two 2-cycle buses.  ``1xR`` is the unified machine.
* a DSP preset name — ``c6x``, ``lx``, ``tigersharc`` (see
  :mod:`repro.machine.dsp`).
"""

from __future__ import annotations

from ..errors import ConfigError
from .config import MachineConfig
from .dsp import DSP_PRESETS
from .presets import clustered, unified


def looks_like_machine_spec(spec: str) -> bool:
    """Whether ``spec`` matches either naming convention *syntactically*.

    True for DSP preset names and well-formed ``NxR[xB[xL]]`` strings —
    including ones :func:`parse_machine_spec` will still reject on
    semantic grounds (resources that do not divide evenly, a
    non-positive latency).  Lets callers with their own namespaces (the
    service's machine registry) distinguish "not a machine spec at all"
    from "a machine spec describing an invalid machine".
    """
    if spec in DSP_PRESETS:
        return True
    parts = spec.lower().split("x")
    if not 2 <= len(parts) <= 4:
        return False
    try:
        [int(p) for p in parts]
    except ValueError:
        return False
    return True


def parse_machine_spec(spec: str) -> MachineConfig:
    """Parse a machine spec: ``NxR[xB[xL]]`` or a DSP preset name.

    Raises:
        ConfigError: if the spec matches neither convention, or the
            resulting configuration is invalid (resources that do not
            divide evenly among the clusters, a non-positive latency).
    """
    if spec in DSP_PRESETS:
        return DSP_PRESETS[spec]()
    parts = spec.lower().split("x")
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise ConfigError(
            f"bad machine spec {spec!r}; use NxR[xB[xL]] or one of "
            f"{sorted(DSP_PRESETS)}"
        ) from None
    if not 2 <= len(numbers) <= 4:
        raise ConfigError(f"bad machine spec {spec!r}")
    num_clusters, registers = numbers[0], numbers[1]
    buses = numbers[2] if len(numbers) > 2 else 1
    latency = numbers[3] if len(numbers) > 3 else 1
    if num_clusters == 1:
        return unified(registers)
    return clustered(num_clusters, registers, buses, latency)
