"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the broad failure classes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Malformed data dependence graph (unknown node, duplicate edge, ...)."""


class ConfigError(ReproError):
    """Invalid machine configuration (zero clusters, negative latency, ...)."""


class PartitionError(ReproError):
    """Partitioning failed or produced an inconsistent assignment."""


class SchedulingError(ReproError):
    """Modulo scheduling failed for every initiation interval tried."""


class ValidationError(ReproError):
    """An allegedly complete schedule violates a dependence or resource bound."""
