"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the broad failure classes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Malformed data dependence graph (unknown node, duplicate edge, ...)."""


class ConfigError(ReproError):
    """Invalid machine configuration (zero clusters, negative latency, ...)."""


class PartitionError(ReproError):
    """Partitioning failed or produced an inconsistent assignment."""


class SchedulingError(ReproError):
    """Modulo scheduling failed for every initiation interval tried."""


class ValidationError(ReproError):
    """An allegedly complete schedule violates a dependence or resource bound."""


class CodecError(ReproError):
    """An encoded request/response payload could not be decoded.

    Raised by :mod:`repro.service.codec` on malformed, truncated or
    wrong-schema payloads.  The result store deliberately converts this
    into a cache *miss* (and drops the entry) rather than letting it
    propagate — a corrupted store must never break a computation it was
    only meant to accelerate.
    """


class StoreError(ReproError):
    """A result store was misconfigured (bad path, non-positive budget)."""


class DaemonError(ReproError):
    """The scheduling daemon could not be reached, spawned, or spoken to.

    Covers connection failures after auto-spawn retries, protocol
    violations, and errors the daemon reported for an operation (the
    original error type name is preserved in the message).
    """


class DaemonBusyError(DaemonError):
    """The daemon refused a connection: its ``max_clients`` bound is full.

    A structured backpressure signal, not a crash — the daemon answers
    the excess connect with a ``busy`` reply instead of queuing blind.
    Classified *transient* by the client's wire retry policy: back off
    and try again (a slot frees when an earlier client finishes).
    """


class DaemonDrainingError(DaemonError):
    """The daemon is draining: it refuses new work but finishes in-flight
    requests before closing (SIGTERM, ``serve --stop``, or an idle
    timeout that fired mid-request).  Classified *transient*: a retry may
    reach a respawned daemon, or the client degrades to in-process
    execution."""


class WireTimeoutError(DaemonError):
    """A socket read/write on the daemon wire exceeded its timeout, or a
    per-request deadline expired before the daemon could answer.

    Both ends use it: the daemon replies with this type when a
    connection stalls past its io timeout or a request arrives with an
    already-expired deadline; the client raises it when an exchange
    exceeds its call timeout.  Classified *transient* — every operation
    is idempotent by content fingerprint, so retrying is always safe.
    """


class DeadlineExceededError(ReproError):
    """A dispatched work chunk missed its per-chunk deadline.

    Raised (or recorded, under ``keep_going``) by the parallel runner's
    retry layer when a worker holds a chunk past
    :attr:`~repro.eval.retry.RetryPolicy.deadline` — the hung-worker
    case.  Classified *transient*: the chunk is retried on a rebuilt
    pool until its attempt budget runs out.
    """

    def __init__(self, seconds: float, attempts: int) -> None:
        self.seconds = seconds
        self.attempts = attempts
        super().__init__(
            f"chunk exceeded its {seconds:g}s deadline "
            f"(attempt {attempts})"
        )
