"""Operation classes and opcodes for the VLIW intermediate representation.

The machine model of the paper (Table 1) distinguishes three functional-unit
classes — integer, floating point and memory.  Every operation in a loop body
belongs to exactly one class, which determines the functional unit it needs
and its default latency.

The scanned paper does not preserve the latency column of Table 1, so we use
the conventional latencies of that era's statically scheduled machines (see
DESIGN.md §2): single-cycle integer ALU, 3-cycle pipelined FP add/multiply,
6-cycle FP divide, 2-cycle loads, 1-cycle stores.  All algorithms see the
same latencies, so comparisons between schedulers are unaffected by the exact
values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional-unit class an operation executes on."""

    INT = "int"
    FP = "fp"
    MEM = "mem"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Dense per-member index (0..len-1, definition order).  The flat-array
# reservation kernels (repro.schedule.arraykernels) address their
# per-(cluster, class) rows as ``cluster * len(OpClass) + op_class.index``;
# a plain attribute read here avoids Enum.__hash__ (a Python-level
# function) on the engine's innermost resource probe.
for _index, _member in enumerate(OpClass):
    _member.index = _index
del _index, _member


@dataclass(frozen=True)
class Opcode:
    """A named operation kind.

    Attributes:
        name: Mnemonic, e.g. ``"fadd"``.
        op_class: Functional-unit class the opcode executes on.
        latency: Cycles from issue until the result may be consumed.
        is_store: True for operations that write memory and produce no value.
    """

    name: str
    op_class: OpClass
    latency: int
    is_store: bool = False

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"opcode {self.name!r} must have latency >= 1")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# The default opcode table.  Users may define additional opcodes; the
# schedulers only look at ``op_class``, ``latency`` and ``is_store``.
ADD = Opcode("add", OpClass.INT, 1)
SUB = Opcode("sub", OpClass.INT, 1)
MUL = Opcode("mul", OpClass.INT, 2)
SHIFT = Opcode("shift", OpClass.INT, 1)
CMP = Opcode("cmp", OpClass.INT, 1)
FADD = Opcode("fadd", OpClass.FP, 3)
FSUB = Opcode("fsub", OpClass.FP, 3)
FMUL = Opcode("fmul", OpClass.FP, 3)
FDIV = Opcode("fdiv", OpClass.FP, 6)
LOAD = Opcode("load", OpClass.MEM, 2)
STORE = Opcode("store", OpClass.MEM, 1, is_store=True)

# Opcodes inserted by the scheduler itself (spill code and explicit
# inter-cluster copies); they are real operations that consume real slots.
SPILL_STORE = Opcode("spill_store", OpClass.MEM, 1, is_store=True)
SPILL_LOAD = Opcode("spill_load", OpClass.MEM, 2)
COMM_STORE = Opcode("comm_store", OpClass.MEM, 1, is_store=True)
COMM_LOAD = Opcode("comm_load", OpClass.MEM, 2)

#: All built-in opcodes, by name.
OPCODES = {
    op.name: op
    for op in (
        ADD, SUB, MUL, SHIFT, CMP,
        FADD, FSUB, FMUL, FDIV,
        LOAD, STORE,
        SPILL_STORE, SPILL_LOAD, COMM_STORE, COMM_LOAD,
    )
}


def opcode(name: str) -> Opcode:
    """Look up a built-in opcode by name.

    Raises:
        KeyError: if ``name`` is not a built-in opcode.
    """
    return OPCODES[name]
