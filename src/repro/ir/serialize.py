"""JSON (de)serialization of loops and dependence graphs.

Lets users persist generated workloads, exchange loop bodies between tools,
and pin exact test fixtures.  The format is a plain dictionary:

.. code-block:: json

    {
      "name": "daxpy",
      "trip_count": 1000,
      "operations": [{"uid": 0, "opcode": "load", "name": "x[i]"}, ...],
      "dependences": [
          {"src": 0, "dst": 2, "latency": 2, "distance": 0, "kind": "data"},
          ...
      ]
    }

Custom opcodes (not in :data:`repro.ir.opcodes.OPCODES`) are inlined with
their class/latency so round-trips never lose information.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..errors import GraphError
from .ddg import DataDependenceGraph, DepKind
from .loop import Loop
from .opcodes import OPCODES, OpClass, Opcode


def loop_to_dict(loop: Loop) -> Dict[str, Any]:
    """Serialize a loop to a JSON-compatible dictionary."""
    ddg = loop.ddg
    operations = []
    for op in ddg.operations():
        entry: Dict[str, Any] = {
            "uid": op.uid,
            "opcode": op.opcode.name,
            "name": op.name,
        }
        if op.opcode.name not in OPCODES:
            entry["op_class"] = op.opcode.op_class.value
            entry["latency"] = op.opcode.latency
            entry["is_store"] = op.opcode.is_store
        operations.append(entry)
    # Replayable order, not edges(): re-adding these dependences one by
    # one reproduces the graph's adjacency-list orders exactly, so a
    # deserialized loop schedules bit-identically to the original (the
    # schedulers' tie-breaks follow adjacency order).
    dependences = [
        {
            "src": dep.src,
            "dst": dep.dst,
            "latency": dep.latency,
            "distance": dep.distance,
            "kind": dep.kind.value,
        }
        for dep in ddg.edges_replayable()
    ]
    return {
        "name": loop.name,
        "trip_count": loop.trip_count,
        "operations": operations,
        "dependences": dependences,
    }


def loop_from_dict(data: Dict[str, Any]) -> Loop:
    """Rebuild a loop from :func:`loop_to_dict` output.

    Raises:
        GraphError: if uids are not dense/ascending or references dangle.
    """
    ddg = DataDependenceGraph(data.get("name", "loop"))
    ops_sorted = sorted(data["operations"], key=lambda e: e["uid"])
    for expected, entry in enumerate(ops_sorted):
        if entry["uid"] != expected:
            raise GraphError(
                f"serialized uids must be dense from 0; got {entry['uid']} "
                f"at position {expected}"
            )
        name = entry["opcode"]
        if name in OPCODES:
            opcode = OPCODES[name]
        else:
            opcode = Opcode(
                name,
                OpClass(entry["op_class"]),
                entry["latency"],
                entry.get("is_store", False),
            )
        ddg.add_operation(opcode, entry.get("name", ""))

    for entry in data["dependences"]:
        ddg.add_dependence(
            ddg.operation(entry["src"]),
            ddg.operation(entry["dst"]),
            latency=entry["latency"],
            distance=entry.get("distance", 0),
            kind=DepKind(entry.get("kind", "data")),
        )
    ddg.validate()
    return Loop(ddg, trip_count=data.get("trip_count", 1), name=ddg.name)


def dumps(loop: Loop, indent: int = 2) -> str:
    """Serialize a loop to a JSON string."""
    return json.dumps(loop_to_dict(loop), indent=indent)


def loads(text: str) -> Loop:
    """Parse a loop from a JSON string."""
    return loop_from_dict(json.loads(text))


def save(loop: Loop, path: str) -> None:
    """Write a loop to a JSON file."""
    with open(path, "w") as handle:
        handle.write(dumps(loop))


def load(path: str) -> Loop:
    """Read a loop from a JSON file."""
    with open(path) as handle:
        return loads(handle.read())
