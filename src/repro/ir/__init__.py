"""Intermediate representation: operations, dependence graphs, loops."""

from .analysis import (
    LoopAnalysis,
    analyze,
    effective_length,
    max_edge_slack,
    rec_mii,
    strongly_connected_components,
)
from .builder import LoopBuilder
from .ddg import DataDependenceGraph, Dependence, DepKind
from .loop import Loop
from .opcodes import OPCODES, OpClass, Opcode, opcode
from .operation import Operation
from .serialize import dumps, load, loads, loop_from_dict, loop_to_dict, save
from .stats import GraphStats, describe, graph_stats
from .transform import remove_dead_operations, renumber, unroll

__all__ = [
    "DataDependenceGraph",
    "Dependence",
    "DepKind",
    "Loop",
    "LoopAnalysis",
    "LoopBuilder",
    "OPCODES",
    "OpClass",
    "Opcode",
    "Operation",
    "GraphStats",
    "analyze",
    "describe",
    "dumps",
    "effective_length",
    "max_edge_slack",
    "graph_stats",
    "load",
    "loads",
    "loop_from_dict",
    "loop_to_dict",
    "opcode",
    "rec_mii",
    "remove_dead_operations",
    "renumber",
    "save",
    "strongly_connected_components",
    "unroll",
]
