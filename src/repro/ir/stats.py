"""Descriptive statistics of loop dependence graphs.

Used to characterize workloads (the suite documentation and the examples
print these) and to sanity-check that generated loops exhibit the intended
shape — operation mix, parallelism profile, recurrence census.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .analysis import analyze, rec_mii, strongly_connected_components
from .loop import Loop


@dataclass(frozen=True)
class GraphStats:
    """Shape summary of one loop body.

    Attributes:
        operations: Total operation count.
        by_class: Operations per functional-unit class value.
        edges: Dependence edge count (all kinds).
        loop_carried_edges: Edges with distance >= 1.
        critical_path: Longest latency-weighted path (at II = RecMII).
        rec_mii: Recurrence-constrained minimum initiation interval.
        recurrences: Non-trivial SCC count (self-loops included).
        max_width: Peak number of operations sharing an ASAP level —
            an optimistic parallelism measure.
        avg_fan_out: Mean DATA out-degree of value-producing operations.
        store_fraction: Stores over all memory operations.
    """

    operations: int
    by_class: Dict[str, int]
    edges: int
    loop_carried_edges: int
    critical_path: int
    rec_mii: int
    recurrences: int
    max_width: int
    avg_fan_out: float
    store_fraction: float

    def parallelism(self) -> float:
        """Operations per critical-path cycle — an ILP upper bound."""
        if self.critical_path <= 0:
            return float(self.operations)
        return self.operations / self.critical_path


def graph_stats(loop: Loop) -> GraphStats:
    """Compute :class:`GraphStats` for one loop."""
    ddg = loop.ddg
    bound = rec_mii(ddg)
    analysis = analyze(ddg, bound)

    levels: Dict[int, int] = {}
    for uid in ddg.uids():
        level = analysis.asap[uid]
        levels[level] = levels.get(level, 0) + 1

    producers = [
        op for op in ddg.operations() if not op.is_store
    ]
    fan_outs: List[int] = [
        len(ddg.consumers_of_value(op.uid)) for op in producers
    ]

    mem_ops = [op for op in ddg.operations() if op.is_memory]
    stores = [op for op in mem_ops if op.is_store]

    recurrences = 0
    for comp in strongly_connected_components(ddg):
        if len(comp) > 1:
            recurrences += 1
        elif any(dep.dst == comp[0] for dep in ddg.out_edges(comp[0])):
            recurrences += 1

    return GraphStats(
        operations=ddg.num_operations,
        by_class=ddg.count_by_class(),
        edges=ddg.num_edges,
        loop_carried_edges=sum(1 for d in ddg.edges() if d.distance),
        critical_path=analysis.makespan,
        rec_mii=bound,
        recurrences=recurrences,
        max_width=max(levels.values(), default=0),
        avg_fan_out=(sum(fan_outs) / len(fan_outs)) if fan_outs else 0.0,
        store_fraction=(len(stores) / len(mem_ops)) if mem_ops else 0.0,
    )


def describe(loop: Loop) -> str:
    """One-paragraph human-readable summary of a loop's shape."""
    stats = graph_stats(loop)
    classes = ", ".join(f"{k}={v}" for k, v in sorted(stats.by_class.items()))
    return (
        f"{loop.name}: {stats.operations} ops ({classes}), "
        f"{stats.edges} edges ({stats.loop_carried_edges} carried), "
        f"critical path {stats.critical_path}, RecMII {stats.rec_mii}, "
        f"{stats.recurrences} recurrence(s), width {stats.max_width}, "
        f"ILP bound {stats.parallelism():.1f}, trip count {loop.trip_count}"
    )
