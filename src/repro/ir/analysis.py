"""II-parametric analysis of data dependence graphs.

For a modulo schedule with initiation interval ``II``, a dependence
``u -> v`` with latency ``lat`` and iteration distance ``dist`` constrains
the *kernel* cycles by::

    cycle(v) - cycle(u) >= lat - II * dist

so every analysis below (earliest/latest start, slack, critical path) is a
longest-path computation over edges of **effective length**
``lat - II * dist``.  These lengths may be negative; the computation
converges iff ``II`` is at least the recurrence-constrained minimum
initiation interval (RecMII), which :func:`rec_mii` computes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import GraphError
from .ddg import DataDependenceGraph, Dependence

#: Memoization of the II-parametric analyses.  Graphs are immutable once
#: built and the schedulers re-analyze the same graph at the same II for
#: every scheduling attempt and algorithm; weak keys let graphs die freely.
_REC_MII_CACHE: "weakref.WeakKeyDictionary[DataDependenceGraph, int]" = (
    weakref.WeakKeyDictionary()
)
_ANALYZE_CACHE: "weakref.WeakKeyDictionary[DataDependenceGraph, Dict[int, LoopAnalysis]]" = (
    weakref.WeakKeyDictionary()
)


def effective_length(dep: Dependence, ii: int) -> int:
    """Minimum kernel-cycle separation imposed by ``dep`` at interval ``ii``."""
    return dep.latency - ii * dep.distance


# ----------------------------------------------------------------------
# Recurrence-constrained minimum initiation interval
# ----------------------------------------------------------------------
def _has_positive_cycle(ddg: DataDependenceGraph, ii: int) -> bool:
    """True if some dependence cycle has positive total effective length."""
    dist: Dict[int, int] = {uid: 0 for uid in ddg.uids()}
    n = ddg.num_operations
    edges = list(ddg.edges())
    for iteration in range(n):
        changed = False
        for dep in edges:
            cand = dist[dep.src] + effective_length(dep, ii)
            if cand > dist[dep.dst]:
                dist[dep.dst] = cand
                changed = True
        if not changed:
            return False
    # A relaxation in the n-th pass means an improving (positive) cycle.
    for dep in edges:
        if dist[dep.src] + effective_length(dep, ii) > dist[dep.dst]:
            return True
    return False


def rec_mii(ddg: DataDependenceGraph) -> int:
    """Recurrence-constrained minimum initiation interval.

    The smallest ``II >= 1`` such that every dependence cycle ``c`` satisfies
    ``sum(latency) <= II * sum(distance)``.  Found by binary search with a
    Bellman-Ford positive-cycle test, so no explicit cycle enumeration is
    needed.

    The result is memoized per graph (graphs are immutable once built):
    the II search loop and every scheduler re-ask for the same bound.
    """
    cached = _REC_MII_CACHE.get(ddg)
    if cached is not None:
        return cached
    ddg.validate()
    if ddg.num_operations == 0:
        result = 1
    else:
        hi = max(1, sum(dep.latency for dep in ddg.edges()))
        if not _has_positive_cycle(ddg, 1):
            result = 1
        else:
            lo = 1  # known infeasible
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if _has_positive_cycle(ddg, mid):
                    lo = mid
                else:
                    hi = mid
            result = hi
    _REC_MII_CACHE[ddg] = result
    return result


# ----------------------------------------------------------------------
# Strongly connected components (Tarjan, iterative)
# ----------------------------------------------------------------------
def strongly_connected_components(ddg: DataDependenceGraph) -> List[List[int]]:
    """SCCs of the DDG (all edges, including loop-carried), deterministic.

    Returned as lists of uids; components and their members are sorted so
    repeated runs produce identical output.
    """
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    counter = [0]
    components: List[List[int]] = []

    for root in ddg.uids():
        if root in index:
            continue
        # Iterative Tarjan with an explicit work stack of (node, succ-iter).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = counter[0]
                lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            recurse = False
            succs = ddg.successors(node)
            for i in range(child_idx, len(succs)):
                succ = succs[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if on_stack.get(succ, False):
                    lowlink[node] = min(lowlink[node], index[succ])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == node:
                        break
                components.append(sorted(comp))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sorted(components)


# ----------------------------------------------------------------------
# Longest-path (ASAP / ALAP / slack) analysis at a fixed II
# ----------------------------------------------------------------------
@dataclass
class LoopAnalysis:
    """Earliest/latest start times and slacks of a DDG at a fixed II.

    Attributes:
        ddg: The analysed graph.
        ii: The initiation interval the analysis assumes (must be >= RecMII).
        asap: Earliest start cycle of each uid.
        alap: Latest start cycle of each uid (for the same makespan).
        makespan: Length of the critical path, i.e. one iteration's span:
            ``max(asap[u] + latency(u))``.
    """

    ddg: DataDependenceGraph
    ii: int
    asap: Dict[int, int]
    alap: Dict[int, int]
    makespan: int

    def mobility(self, uid: int) -> int:
        """Scheduling freedom of a node: ``alap - asap``."""
        return self.alap[uid] - self.asap[uid]

    def edge_slack(self, dep: Dependence) -> int:
        """Delay cycles addable to ``dep`` without stretching the makespan."""
        return self.alap[dep.dst] - self.asap[dep.src] - effective_length(dep, ii=self.ii)

    def depth(self, uid: int) -> int:
        """Longest effective path from any source to ``uid`` (= asap)."""
        return self.asap[uid]

    def height(self, uid: int) -> int:
        """Longest effective path from ``uid`` to any sink, inclusive."""
        return self.makespan - self.alap[uid]


def analyze(
    ddg: DataDependenceGraph,
    ii: int,
    extra_edge_latency: Optional[Tuple[Dependence, int]] = None,
) -> LoopAnalysis:
    """Compute ASAP/ALAP/makespan for ``ddg`` at interval ``ii``.

    Args:
        ddg: Graph to analyse.
        ii: Initiation interval; must be at least the graph's RecMII (with the
            extra latency applied, if any), otherwise GraphError is raised.
        extra_edge_latency: Optionally ``(dep, added)`` — analyse as if
            ``dep``'s latency were ``dep.latency + added``.  Used by the
            partitioner to price a bus delay on a single edge.

    Raises:
        GraphError: if the longest-path computation does not converge, i.e.
            ``ii`` is below the (possibly modified) recurrence bound.

    Plain analyses (no ``extra_edge_latency``) are memoized per (graph, II);
    the returned :class:`LoopAnalysis` is shared and must not be mutated.
    """
    if extra_edge_latency is None:
        per_ii = _ANALYZE_CACHE.get(ddg)
        if per_ii is not None and ii in per_ii:
            return per_ii[ii]

    def length(dep: Dependence) -> int:
        lat = dep.latency
        if extra_edge_latency is not None and dep is extra_edge_latency[0]:
            lat += extra_edge_latency[1]
        return lat - ii * dep.distance

    uids = ddg.uids()
    edges = list(ddg.edges())
    n = len(uids)

    # ASAP by Bellman-Ford longest path from a virtual source at cycle 0.
    asap = {uid: 0 for uid in uids}
    for iteration in range(n):
        changed = False
        for dep in edges:
            cand = asap[dep.src] + length(dep)
            if cand > asap[dep.dst]:
                asap[dep.dst] = cand
                changed = True
        if not changed:
            break
    else:
        for dep in edges:
            if asap[dep.src] + length(dep) > asap[dep.dst]:
                raise GraphError(
                    f"analysis of {ddg.name!r} at II={ii} does not converge "
                    "(II below recurrence bound)"
                )

    makespan = max(
        (asap[uid] + ddg.operation(uid).latency for uid in uids), default=0
    )

    # ALAP: longest path to the sink, computed on the reversed graph.
    tail = {
        uid: ddg.operation(uid).latency for uid in uids
    }  # longest path from uid to completion, >= its own latency
    for iteration in range(n):
        changed = False
        for dep in edges:
            cand = length(dep) + tail[dep.dst]
            if cand > tail[dep.src]:
                tail[dep.src] = cand
                changed = True
        if not changed:
            break
    alap = {uid: makespan - tail[uid] for uid in uids}

    result = LoopAnalysis(ddg=ddg, ii=ii, asap=asap, alap=alap, makespan=makespan)
    if extra_edge_latency is None:
        _ANALYZE_CACHE.setdefault(ddg, {})[ii] = result
    return result


def max_edge_slack(analysis: LoopAnalysis) -> int:
    """The paper's ``maxsl``: maximum slack over all edges of the graph."""
    return max(
        (analysis.edge_slack(dep) for dep in analysis.ddg.edges()), default=0
    )
