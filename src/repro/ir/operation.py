"""Operations: the nodes of a data dependence graph."""

from __future__ import annotations

from dataclasses import dataclass, field

from .opcodes import OpClass, Opcode


@dataclass(frozen=True)
class Operation:
    """A single machine operation in a loop body.

    Operations are identified by an integer ``uid`` that is unique within
    their :class:`~repro.ir.ddg.DataDependenceGraph`.  Equality and hashing
    use the uid only, so an operation can be used as a dictionary key while
    carrying mutable-free descriptive payload.

    Attributes:
        uid: Unique id within the owning graph.
        opcode: The operation kind (determines FU class and latency).
        name: Optional human-readable label (defaults to ``"op<uid>"``).
    """

    uid: int
    opcode: Opcode
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", f"op{self.uid}")

    @property
    def op_class(self) -> OpClass:
        """Functional-unit class this operation executes on."""
        return self.opcode.op_class

    @property
    def latency(self) -> int:
        """Cycles until this operation's result may be consumed."""
        return self.opcode.latency

    @property
    def is_store(self) -> bool:
        """True if the operation writes memory and produces no register value."""
        return self.opcode.is_store

    @property
    def is_memory(self) -> bool:
        """True if the operation uses a memory port."""
        return self.op_class is OpClass.MEM

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operation({self.uid}, {self.opcode.name}, {self.name!r})"
