"""Loop transformations on dependence graphs.

The paper's related work (Sánchez & González, ICPP'00) studies **loop
unrolling** as a lever for modulo scheduling on clustered VLIWs: unrolling
by ``U`` replicates the body, turning one iteration's recurrence span into
``U`` iterations' worth of work and exposing more parallelism per kernel
iteration — at the cost of register pressure and code size.  This module
implements dependence-correct unrolling plus a couple of classic cleanup
passes used by the workload generators and the examples.

Unrolling semantics: operation ``op`` of the original body becomes copies
``op@0 .. op@U-1``.  A dependence ``u -> v`` with iteration distance ``d``
connects copy ``i`` of ``u`` to copy ``(i + d) mod U`` of ``v``, with new
distance ``(i + d) // U`` — the standard index arithmetic that preserves
the exact dependence structure of the rolled loop.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from ..errors import GraphError
from .ddg import DataDependenceGraph
from .loop import Loop
from .operation import Operation


def unroll(loop: Loop, factor: int) -> Loop:
    """Unroll ``loop`` by ``factor``; trip count shrinks accordingly.

    Args:
        loop: The rolled loop.
        factor: Unroll factor ``U >= 1`` (1 returns a fresh copy).

    Returns:
        A new loop whose body has ``U x`` the operations and whose trip
        count is ``ceil(original / U)``.

    Raises:
        GraphError: if ``factor < 1``.
    """
    if factor < 1:
        raise GraphError(f"unroll factor must be >= 1, got {factor}")

    ddg = loop.ddg
    unrolled = DataDependenceGraph(f"{ddg.name}_u{factor}")
    copies: Dict[Tuple[int, int], Operation] = {}
    for copy in range(factor):
        for op in ddg.operations():
            copies[(op.uid, copy)] = unrolled.add_operation(
                op.opcode, f"{op.name}@{copy}"
            )

    for dep in ddg.edges():
        for copy in range(factor):
            target_copy = (copy + dep.distance) % factor
            new_distance = (copy + dep.distance) // factor
            unrolled.add_dependence(
                copies[(dep.src, copy)],
                copies[(dep.dst, target_copy)],
                latency=dep.latency,
                distance=new_distance,
                kind=dep.kind,
            )

    unrolled.validate()
    return Loop(
        unrolled,
        trip_count=max(1, math.ceil(loop.trip_count / factor)),
        name=unrolled.name,
    )


def remove_dead_operations(loop: Loop) -> Loop:
    """Drop operations whose results are never used and have no side effect.

    Stores (and any operation reachable backwards from a store or from an
    operation with a loop-carried self-use) are roots; everything not
    feeding a root transitively is dead.  Useful for cleaning generated
    workloads.
    """
    ddg = loop.ddg
    roots = [op.uid for op in ddg.operations() if op.is_store]
    # Operations participating in recurrences observable across iterations
    # are conservatively kept as roots too.
    for dep in ddg.edges():
        if dep.distance > 0:
            roots.append(dep.src)
            roots.append(dep.dst)

    live = set(roots)
    stack = list(roots)
    while stack:
        uid = stack.pop()
        for pred in ddg.predecessors(uid):
            if pred not in live:
                live.add(pred)
                stack.append(pred)

    if len(live) == ddg.num_operations:
        return loop

    pruned = DataDependenceGraph(ddg.name)
    mapping: Dict[int, Operation] = {}
    for op in ddg.operations():
        if op.uid in live:
            mapping[op.uid] = pruned.add_operation(op.opcode, op.name)
    for dep in ddg.edges():
        if dep.src in live and dep.dst in live:
            pruned.add_dependence(
                mapping[dep.src],
                mapping[dep.dst],
                latency=dep.latency,
                distance=dep.distance,
                kind=dep.kind,
            )
    pruned.validate()
    return Loop(pruned, trip_count=loop.trip_count, name=loop.name)


def renumber(loop: Loop) -> Loop:
    """Rebuild the loop with dense uids in topological order.

    Deterministic normal form: useful after transformation pipelines and
    for comparing graphs structurally in tests.
    """
    ddg = loop.ddg
    order = ddg.topological_order()
    rebuilt = DataDependenceGraph(ddg.name)
    mapping: Dict[int, Operation] = {}
    for uid in order:
        op = ddg.operation(uid)
        mapping[uid] = rebuilt.add_operation(op.opcode, op.name)
    for dep in ddg.edges():
        rebuilt.add_dependence(
            mapping[dep.src],
            mapping[dep.dst],
            latency=dep.latency,
            distance=dep.distance,
            kind=dep.kind,
        )
    rebuilt.validate()
    return Loop(rebuilt, trip_count=loop.trip_count, name=loop.name)
