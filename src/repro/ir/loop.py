"""Loops: a data dependence graph plus profile information.

The paper schedules innermost loops; the only profile information its
algorithms consume is the loop's iteration count (``niter``), obtained
through profiling, which enters the partitioner's ``delay(e)`` formula and
the IPC metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ddg import DataDependenceGraph


@dataclass
class Loop:
    """An innermost loop to be modulo scheduled.

    Attributes:
        ddg: Body data dependence graph.
        trip_count: Profiled number of iterations (``niter``), >= 1.
        name: Loop label; defaults to the DDG name.
    """

    ddg: DataDependenceGraph
    trip_count: int
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise ValueError(f"loop {self.name or self.ddg.name!r}: trip_count must be >= 1")
        if not self.name:
            self.name = self.ddg.name

    @property
    def num_operations(self) -> int:
        return self.ddg.num_operations

    def total_dynamic_operations(self) -> int:
        """Operations executed by a full run of the loop."""
        return self.num_operations * self.trip_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Loop({self.name!r}, ops={self.num_operations}, niter={self.trip_count})"
