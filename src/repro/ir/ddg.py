"""Data dependence graphs (DDGs) for loop bodies.

A DDG node is an :class:`~repro.ir.operation.Operation`; an edge is a
:class:`Dependence` annotated with a *latency* (minimum cycle separation
between the producer's issue and the consumer's issue) and a *distance*
(number of loop iterations the dependence spans; ``0`` for intra-iteration
dependences, ``>= 1`` for loop-carried ones).

A modulo schedule with initiation interval ``II`` must satisfy, for every
dependence ``u -> v``::

    cycle(v) >= cycle(u) + latency - II * distance

Only ``DATA`` dependences transfer a register value and therefore require an
inter-cluster communication when the endpoints live in different clusters;
``MEM`` and ``SERIAL`` edges merely order operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..errors import GraphError
from .opcodes import Opcode
from .operation import Operation


class DepKind(enum.Enum):
    """Kind of a dependence edge."""

    DATA = "data"      #: register flow dependence (value must be communicated)
    MEM = "mem"        #: memory ordering dependence (no value transfer)
    SERIAL = "serial"  #: other ordering constraints (control, anti, output)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Dependence:
    """A dependence edge ``src -> dst``.

    Attributes:
        src: Producer operation uid.
        dst: Consumer operation uid.
        latency: Minimum issue-cycle separation (usually the producer latency).
        distance: Iteration distance (0 = same iteration).
        kind: Edge kind; only DATA edges carry register values.
    """

    src: int
    dst: int
    latency: int
    distance: int = 0
    kind: DepKind = DepKind.DATA

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise GraphError(f"dependence {self.src}->{self.dst}: negative latency")
        if self.distance < 0:
            raise GraphError(f"dependence {self.src}->{self.dst}: negative distance")

    @property
    def is_loop_carried(self) -> bool:
        """True if the dependence spans at least one iteration."""
        return self.distance > 0

    @property
    def carries_value(self) -> bool:
        """True if a register value flows along this edge."""
        return self.kind is DepKind.DATA


class DataDependenceGraph:
    """A multigraph of operations and dependences for one loop body.

    The graph may contain cycles, but every cycle must include at least one
    loop-carried edge (``distance >= 1``); :meth:`validate` checks this.
    Parallel edges between the same pair of nodes are allowed (e.g. a DATA
    edge and a MEM ordering edge).
    """

    def __init__(self, name: str = "loop") -> None:
        self.name = name
        self._ops: Dict[int, Operation] = {}
        self._succ: Dict[int, List[Dependence]] = {}
        self._pred: Dict[int, List[Dependence]] = {}
        self._next_uid = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(self, opcode: Opcode, name: str = "") -> Operation:
        """Create a new operation node and return it."""
        op = Operation(self._next_uid, opcode, name)
        self._ops[op.uid] = op
        self._succ[op.uid] = []
        self._pred[op.uid] = []
        self._next_uid += 1
        return op

    def add_dependence(
        self,
        src: Operation,
        dst: Operation,
        latency: Optional[int] = None,
        distance: int = 0,
        kind: DepKind = DepKind.DATA,
    ) -> Dependence:
        """Add a dependence edge; latency defaults to the producer's latency.

        Raises:
            GraphError: if either endpoint is not a node of this graph, or a
                zero-distance self-edge is requested.
        """
        for op in (src, dst):
            if op.uid not in self._ops or self._ops[op.uid] is not op:
                raise GraphError(f"operation {op!r} does not belong to graph {self.name!r}")
        if src.uid == dst.uid and distance == 0:
            raise GraphError(f"zero-distance self dependence on op {src.uid}")
        if kind is DepKind.DATA and src.is_store:
            raise GraphError(f"store op {src.uid} cannot produce a DATA value")
        dep = Dependence(
            src.uid,
            dst.uid,
            latency=src.latency if latency is None else latency,
            distance=distance,
            kind=kind,
        )
        self._succ[src.uid].append(dep)
        self._pred[dst.uid].append(dep)
        return dep

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def operation(self, uid: int) -> Operation:
        """Return the operation with the given uid."""
        try:
            return self._ops[uid]
        except KeyError:
            raise GraphError(f"no operation with uid {uid} in graph {self.name!r}") from None

    def operations(self) -> List[Operation]:
        """All operations, in creation (uid) order."""
        return [self._ops[uid] for uid in sorted(self._ops)]

    def uids(self) -> List[int]:
        """All operation uids, sorted."""
        return sorted(self._ops)

    def edges(self) -> Iterator[Dependence]:
        """Iterate over all dependence edges."""
        for uid in sorted(self._succ):
            yield from self._succ[uid]

    def edges_replayable(self) -> List[Dependence]:
        """Every edge once, in an order whose replay rebuilds this graph
        *exactly* — same ``out_edges`` and same ``in_edges`` orders.

        :meth:`edges` groups by producer and therefore loses the
        interleaving of each consumer's in-edge list; schedulers break
        ties by adjacency-list order, so a graph rebuilt from it can
        schedule differently despite being structurally equal.  This
        order is a deterministic merge of both projections: an edge is
        emitted only when it is next in *both* its producer's out-list
        and its consumer's in-list.  Such a merge always completes,
        because the original insertion order satisfies both projections.
        """
        succ_pos = {uid: 0 for uid in self._succ}
        pred_pos = {uid: 0 for uid in self._pred}
        ordered: List[Dependence] = []
        total = self.num_edges
        uids = sorted(self._succ)
        while len(ordered) < total:
            emitted = False
            for uid in uids:
                out = self._succ[uid]
                while succ_pos[uid] < len(out):
                    dep = out[succ_pos[uid]]
                    incoming = self._pred[dep.dst]
                    if incoming[pred_pos[dep.dst]] is not dep:
                        break
                    ordered.append(dep)
                    succ_pos[uid] += 1
                    pred_pos[dep.dst] += 1
                    emitted = True
            if not emitted:  # pragma: no cover - defensive
                raise GraphError(
                    f"graph {self.name!r} has inconsistent adjacency orders"
                )
        return ordered

    def out_edges(self, uid: int) -> List[Dependence]:
        """Dependences whose producer is ``uid``."""
        return list(self._succ[uid])

    def in_edges(self, uid: int) -> List[Dependence]:
        """Dependences whose consumer is ``uid``."""
        return list(self._pred[uid])

    def successors(self, uid: int) -> List[int]:
        """Distinct consumer uids of ``uid`` (stable order)."""
        seen, out = set(), []
        for dep in self._succ[uid]:
            if dep.dst not in seen:
                seen.add(dep.dst)
                out.append(dep.dst)
        return out

    def predecessors(self, uid: int) -> List[int]:
        """Distinct producer uids of ``uid`` (stable order)."""
        seen, out = set(), []
        for dep in self._pred[uid]:
            if dep.src not in seen:
                seen.add(dep.src)
                out.append(dep.src)
        return out

    def consumers_of_value(self, uid: int) -> List[Dependence]:
        """DATA out-edges of ``uid`` — the uses of the value it defines."""
        return [dep for dep in self._succ[uid] if dep.carries_value]

    @property
    def num_operations(self) -> int:
        return len(self._ops)

    @property
    def num_edges(self) -> int:
        return sum(len(deps) for deps in self._succ.values())

    def count_by_class(self) -> Dict[str, int]:
        """Number of operations per functional-unit class (by class value)."""
        counts: Dict[str, int] = {}
        for op in self._ops.values():
            key = op.op_class.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Validation and export
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants.

        Raises:
            GraphError: if any zero-distance cycle exists (the loop body must
                be acyclic once loop-carried edges are removed).
        """
        # Kahn's algorithm over zero-distance edges only.
        indeg = {uid: 0 for uid in self._ops}
        for dep in self.edges():
            if dep.distance == 0:
                indeg[dep.dst] += 1
        ready = [uid for uid, d in indeg.items() if d == 0]
        visited = 0
        while ready:
            uid = ready.pop()
            visited += 1
            for dep in self._succ[uid]:
                if dep.distance == 0:
                    indeg[dep.dst] -= 1
                    if indeg[dep.dst] == 0:
                        ready.append(dep.dst)
        if visited != len(self._ops):
            raise GraphError(
                f"graph {self.name!r} has a cycle with zero total iteration distance"
            )

    def topological_order(self) -> List[int]:
        """Topological order of uids ignoring loop-carried edges.

        Deterministic: ties broken by uid.  Assumes :meth:`validate` passes.
        """
        indeg = {uid: 0 for uid in self._ops}
        for dep in self.edges():
            if dep.distance == 0:
                indeg[dep.dst] += 1
        import heapq

        heap = [uid for uid, d in indeg.items() if d == 0]
        heapq.heapify(heap)
        order: List[int] = []
        while heap:
            uid = heapq.heappop(heap)
            order.append(uid)
            for dep in self._succ[uid]:
                if dep.distance == 0:
                    indeg[dep.dst] -= 1
                    if indeg[dep.dst] == 0:
                        heapq.heappush(heap, dep.dst)
        if len(order) != len(self._ops):
            raise GraphError(f"graph {self.name!r} is cyclic ignoring distances")
        return order

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT format (for debugging/examples)."""
        lines = [f'digraph "{self.name}" {{']
        for op in self.operations():
            lines.append(f'  n{op.uid} [label="{op.name}\\n{op.opcode.name}"];')
        for dep in self.edges():
            style = "solid" if dep.kind is DepKind.DATA else "dashed"
            label = f"{dep.latency}"
            if dep.distance:
                label += f",d{dep.distance}"
            lines.append(
                f'  n{dep.src} -> n{dep.dst} [label="{label}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataDependenceGraph({self.name!r}, ops={self.num_operations}, "
            f"edges={self.num_edges})"
        )
