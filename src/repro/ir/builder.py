"""A small fluent builder for constructing loop DDGs by hand.

Used throughout the tests, the example programs and the hand-written kernel
workloads.  Operands are producer :class:`~repro.ir.operation.Operation`
objects; loop-invariant inputs (constants, values computed outside the loop)
are simply not represented — an operation with no operands reads only
invariant inputs.

Example::

    b = LoopBuilder("daxpy", trip_count=1000)
    x = b.load("x[i]")
    y = b.load("y[i]")
    ax = b.op("fmul", x, name="a*x")
    s = b.op("fadd", ax, y, name="a*x+y")
    b.store(s, "y[i]")
    loop = b.build()
"""

from __future__ import annotations

from typing import Optional

from .ddg import DataDependenceGraph, DepKind
from .loop import Loop
from .opcodes import OPCODES, Opcode
from .operation import Operation


class LoopBuilder:
    """Incrementally build a :class:`~repro.ir.loop.Loop`."""

    def __init__(self, name: str, trip_count: int = 100) -> None:
        self._ddg = DataDependenceGraph(name)
        self._trip_count = trip_count

    # ------------------------------------------------------------------
    def op(
        self,
        opcode: "str | Opcode",
        *operands: Operation,
        name: str = "",
        latency: Optional[int] = None,
    ) -> Operation:
        """Add an operation consuming the values of ``operands``.

        Args:
            opcode: Built-in opcode name (see :mod:`repro.ir.opcodes`) or an
                :class:`Opcode` instance.
            operands: Producer operations whose results this op reads.
            name: Optional label.
            latency: Override the dependence latency from each operand
                (defaults to each operand's own latency).
        """
        oc = OPCODES[opcode] if isinstance(opcode, str) else opcode
        node = self._ddg.add_operation(oc, name)
        for producer in operands:
            self._ddg.add_dependence(producer, node, latency=latency)
        return node

    def load(self, name: str = "") -> Operation:
        """Add a load operation (reads only loop-invariant address inputs)."""
        return self.op("load", name=name)

    def store(self, value: Operation, name: str = "") -> Operation:
        """Add a store of ``value`` to memory."""
        return self.op("store", value, name=name)

    def recurrence(
        self,
        src: Operation,
        dst: Operation,
        distance: int = 1,
        latency: Optional[int] = None,
    ) -> None:
        """Add a loop-carried DATA dependence ``src -> dst``.

        Typical use: the value computed at the end of iteration *i* feeds an
        operation of iteration *i + distance*.
        """
        self._ddg.add_dependence(src, dst, latency=latency, distance=distance)

    def memory_order(
        self, first: Operation, second: Operation, distance: int = 0
    ) -> None:
        """Add a memory-ordering (non-value) edge ``first -> second``."""
        self._ddg.add_dependence(
            first, second, latency=1, distance=distance, kind=DepKind.MEM
        )

    # ------------------------------------------------------------------
    @property
    def ddg(self) -> DataDependenceGraph:
        """The graph under construction (also usable directly)."""
        return self._ddg

    def build(self, trip_count: Optional[int] = None) -> Loop:
        """Validate the graph and return the finished loop."""
        self._ddg.validate()
        return Loop(self._ddg, trip_count or self._trip_count)
